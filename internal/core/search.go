package core

import (
	"context"
	"math/rand"
)

// Alternative search strategies, used to ablate the paper's choice of
// multi-start simulated annealing: a pure random search and a greedy hill
// climber at comparable evaluation budgets. The benchmark suite compares
// all three against the exhaustive optimum.

// RandomSearch evaluates `budget` uniform samples and returns the best
// feasible one (a context.Background() wrapper over
// RandomSearchContext).
func (e *Evaluator) RandomSearch(space Space, seed int64, budget int) (*OptimizeResult, error) {
	return e.RandomSearchContext(context.Background(), space, seed, budget)
}

// RandomSearchContext is RandomSearch observing ctx between
// evaluations; on cancellation it returns ctx.Err().
func (e *Evaluator) RandomSearchContext(ctx context.Context, space Space, seed int64, budget int) (*OptimizeResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := &OptimizeResult{}
	var best *Evaluation
	for i := 0; i < budget; i++ {
		ev, err := e.EvaluateContext(ctx, space.Random(rng))
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		if ev.Feasible && (best == nil || betterEval(ev, best)) {
			best = ev
		}
	}
	res.Explored = e.Explored()
	if best != nil {
		res.Best, res.Found = best, true
	}
	return res, nil
}

// GreedySearch hill-climbs from the best of a handful of random feasible
// starts: at each step it evaluates a batch of neighbors and moves to the
// best feasible improvement, stopping when no neighbor improves. The
// total evaluation budget is shared with the restarts (a
// context.Background() wrapper over GreedySearchContext).
func (e *Evaluator) GreedySearch(space Space, seed int64, budget int) (*OptimizeResult, error) {
	return e.GreedySearchContext(context.Background(), space, seed, budget)
}

// GreedySearchContext is GreedySearch observing ctx between
// evaluations; on cancellation it returns ctx.Err().
func (e *Evaluator) GreedySearchContext(ctx context.Context, space Space, seed int64, budget int) (*OptimizeResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := &OptimizeResult{}
	var best *Evaluation
	spent := 0
	evaluate := func(p DesignPoint) (*Evaluation, error) {
		spent++
		return e.EvaluateContext(ctx, p)
	}

	for spent < budget {
		// Random feasible start.
		var cur *Evaluation
		for spent < budget {
			ev, err := evaluate(space.Random(rng))
			if err != nil {
				return nil, err
			}
			if ev.Feasible {
				cur = ev
				break
			}
		}
		if cur == nil {
			break
		}
		// Climb.
		for spent < budget {
			var bestNb *Evaluation
			const batch = 8
			for i := 0; i < batch && spent < budget; i++ {
				ev, err := evaluate(space.Neighbor(cur.Point, rng))
				if err != nil {
					return nil, err
				}
				if ev.Feasible && ev.Objective < cur.Objective &&
					(bestNb == nil || ev.Objective < bestNb.Objective) {
					bestNb = ev
				}
			}
			if bestNb == nil {
				break // local optimum
			}
			cur = bestNb
		}
		if best == nil || betterEval(cur, best) {
			best = cur
		}
	}
	res.Evaluations = spent
	res.Explored = e.Explored()
	if best != nil {
		res.Best, res.Found = best, true
	}
	return res, nil
}
