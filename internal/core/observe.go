package core

import (
	"tesa/internal/anneal"
	"tesa/internal/telemetry"
)

// annealObserver bridges annealer progress into the telemetry hub:
// move-outcome counters always, plus one trace event per temperature
// level and per annealer lifecycle edge when a sink is attached. It is
// shared by the three parallel starts, which is safe because both the
// registry and the sink serialize internally.
type annealObserver struct {
	tel *telemetry.Telemetry
}

func (o *annealObserver) AnnealStart(e anneal.StartEvent) {
	o.tel.Emit("anneal.start", map[string]any{
		"start":  e.Start,
		"tinit":  e.TInit,
		"tfinal": e.TFinal,
		"decay":  e.Decay,
		"seed":   e.Seed,
	})
}

func (o *annealObserver) AnnealLevel(e anneal.LevelEvent) {
	reg := o.tel.Registry()
	reg.Counter("anneal.accepted").Add(int64(e.Accepted))
	reg.Counter("anneal.uphill").Add(int64(e.Uphill))
	reg.Counter("anneal.rejected").Add(int64(e.Rejected))
	reg.Counter("anneal.infeasible").Add(int64(e.Infeasible))
	if !o.tel.Tracing() {
		return // skip the field-map allocation when nothing consumes it
	}
	o.tel.Emit("anneal.level", map[string]any{
		"start":       e.Start,
		"level":       e.Level,
		"temp":        e.Temperature,
		"cur_obj":     e.CurObj,
		"best_obj":    e.BestObj,
		"accepted":    e.Accepted,
		"uphill":      e.Uphill,
		"rejected":    e.Rejected,
		"infeasible":  e.Infeasible,
		"evaluations": e.Evaluations,
		"duration_ms": float64(e.Duration.Microseconds()) / 1e3,
	})
}

func (o *annealObserver) AnnealDone(e anneal.DoneEvent) {
	if !o.tel.Tracing() {
		return
	}
	o.tel.Emit("anneal.done", map[string]any{
		"start":       e.Start,
		"found":       e.Found,
		"best_obj":    e.BestObj,
		"levels":      e.Levels,
		"evaluations": e.Evaluations,
		"accepted":    e.Accepted,
		"uphill":      e.Uphill,
		"duration_ms": float64(e.Duration.Microseconds()) / 1e3,
	})
}
