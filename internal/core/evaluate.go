package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"tesa/internal/area"
	"tesa/internal/cost"
	"tesa/internal/dnn"
	"tesa/internal/faults"
	"tesa/internal/floorplan"
	"tesa/internal/memo"
	"tesa/internal/nop"
	"tesa/internal/power"
	"tesa/internal/sched"
	"tesa/internal/surrogate"
	"tesa/internal/systolic"
	"tesa/internal/telemetry"
	"tesa/internal/thermal"
)

// Pipeline stage names — the keys of the fault-injection hooks, the
// Stage field of EvalError, and (prefixed with "stage.") the telemetry
// span names.
const (
	stageSystolic  = "systolic"
	stageFloorplan = "floorplan"
	stageSched     = "sched"
	stageDRAM      = "dram"
	stageCost      = "cost"
	stageThermal   = "thermal"
)

// Evaluation is the full characterization of one MCM design point — the
// outputs of the Fig. 2b pipeline that the optimizer consumes plus
// everything the paper's tables report.
type Evaluation struct {
	Point DesignPoint

	// Feasible is true when every user-defined constraint holds.
	Feasible bool
	// Violations lists the violated constraints ("area", "latency",
	// "power", "temperature", "runaway").
	Violations []string
	// Fits is false when no chiplet mesh fits the interposer at all; the
	// remaining fields are then zero.
	Fits bool

	Mesh    floorplan.Mesh
	Chiplet area.Chiplet
	// MakespanSec is the workload completion time; the latency
	// constraint is MakespanSec <= 1/FPS.
	MakespanSec float64
	// LatencyFactor is MakespanSec * FPS: >1 means violation (the paper
	// reports "36x longer than 30 fps" style factors).
	LatencyFactor float64

	// PeakTempC is the maximum junction temperature across all execution
	// phases (NaN when thermal evaluation is disabled).
	PeakTempC float64
	// Runaway marks a diverging leakage-temperature fixed point.
	Runaway bool
	// LeakIters is the maximum leakage-temperature iterations over
	// phases.
	LeakIters int
	// ThermalFidelity records which rung of the degraded-retry ladder
	// produced the thermal numbers: "full" (first attempt), "relaxed"
	// (looser CG tolerance), "coarse" (halved grid), or "lumped"
	// (steady-state 1-resistor fallback). Under Options.ThermalFast two
	// more values appear: "surrogate-hot" (the lumped underestimate
	// already exceeded budget+band, so the grid solve was skipped and
	// PeakTempC is the lumped value) and "surrogate-cool" (the
	// column-bound overestimate cleared budget-band, so PeakTempC — and
	// the leakage-bearing power figures — are the conservative bound
	// values). Empty when thermal analysis did not run.
	ThermalFidelity string
	// ThermalRetries counts the ladder rungs that failed before
	// ThermalFidelity succeeded (0 = the full-fidelity solve converged).
	ThermalRetries int

	// TotalPowerW is the worst-phase chiplet power including leakage at
	// the converged temperature; DynamicPowerW is its dynamic part.
	TotalPowerW   float64
	DynamicPowerW float64
	LeakageW      float64

	MCMCost      cost.Breakdown
	DRAMPowerW   float64
	DRAMChannels int
	// OPS is the sustained operations per second during workload
	// execution: 2 operations per MAC over the makespan. PeakOPS is the
	// hardware's peak capacity (2 x PEs x chiplets x frequency), the
	// paper's Sec. IV-B.3 comparison metric.
	OPS     float64
	PeakOPS float64

	// Objective is Eq. (6): Alpha*cost/RefCost + Beta*DRAM/RefDRAM.
	Objective float64

	// Schedule is the static DNN-to-chiplet assignment.
	Schedule *sched.Schedule
	// Placement is the concrete floorplan (chiplet rectangles on the
	// interposer).
	Placement *floorplan.Placement
	// ChipletTraffic is each chiplet's DRAM traffic in bytes per frame.
	ChipletTraffic []int64
	// Hottest, when full evaluation was requested, is the thermal field
	// of the hottest phase (for Fig. 6 maps).
	Hottest *thermal.Result
	// HottestStack is the stack that produced Hottest.
	HottestStack *thermal.Stack
	// Full records whether thermal analysis ran to completion even after
	// an early constraint violation (reporting mode).
	Full bool

	// compact marks an evaluation rebuilt from a persistent memo record:
	// every scalar above is bit-identical to the original computation,
	// but Schedule, Placement and the thermal field are nil. See Compact.
	compact bool
}

// Compact reports whether this evaluation was served from a persistent
// memo record and therefore carries only scalar results — Schedule,
// Placement, ChipletTraffic details and the thermal field structures are
// absent. Re-evaluate the point through EvaluateFull when the structures
// are needed; the engines do this automatically for reported winners.
func (ev *Evaluation) Compact() bool { return ev.compact }

// Evaluator runs the TESA pipeline for design points of one workload
// under one (Options, Constraints) setting, memoizing both the
// performance simulations and whole-point evaluations — the paper's
// SCALE-Sim runs take minutes to hours per point, which is exactly why
// the real tool-chain caches too.
type Evaluator struct {
	Workload dnn.Workload
	Opts     Options
	Cons     Constraints
	Models   Models

	sim *systolic.Simulator

	// tel is the optional observability hub (nil = disabled fast path);
	// see Instrument.
	tel *telemetry.Telemetry
	// flight retains each worker goroutine's recent stage events so a
	// quarantine record carries its own causal trace. Non-nil exactly
	// when tel is (Instrument creates it), so the disabled path pays one
	// nil check.
	flight *telemetry.FlightRecorder

	// injected is the optional fault-injection plan (nil = no
	// injection); see InjectFaults.
	injected *faults.Plan
	// stageTimeout, when positive, bounds each stage's wall time; see
	// SetStageTimeout.
	stageTimeout time.Duration

	// wsPool recycles thermal CG workspace arenas across ThermalFast
	// solves; a workspace is not goroutine-safe, so thermalAttempt checks
	// one out for the duration of its leakage loop.
	wsPool sync.Pool
	// warm is the ThermalFast warm-start cache: the last converged
	// temperature-rise field per thermal geometry class (see warmKey).
	warm warmCache

	// memo is the optional cross-point memoization store (nil =
	// disabled); see UseMemo and Options.Memo. It may be shared across
	// evaluators — keys carry configuration fingerprints.
	memo *memo.Store
	// sur is the online learned search ranking (nil unless
	// Options.Surrogate); surReplay guards the one-time corpus replay
	// from the memo store, and surStats mirrors the surrogate.*
	// telemetry counters. See surrogate.go.
	sur       *surrogate.Model
	surReplay sync.Once
	surStats  surrogateStats
	// fpOnce guards the lazy fingerprint computation below (memoize.go).
	fpOnce sync.Once
	cfgFP  string   // whole-evaluation configuration fingerprint
	perfFP string   // performance-model (systolic/sched) fingerprint
	netFPs []string // per-network content fingerprints

	mu     sync.Mutex
	cache  map[DesignPoint]*Evaluation
	failed map[DesignPoint]*EvalError // quarantine ledger: poisoned points and why
	hits   int                        // Evaluate calls served from the memo cache
	misses int                        // Evaluate calls that ran the pipeline
}

// Instrument attaches an observability hub: the pipeline records
// per-stage wall time into tel's timing histograms and counts cache
// hits/misses, Optimize forwards annealer progress as trace events, and
// a per-goroutine flight recorder starts retaining recent stage events
// for quarantine records. A nil tel (the default) disables all of it at
// the cost of a nil check per probe. Call before the first Evaluate;
// the hub may be shared across evaluators.
func (e *Evaluator) Instrument(tel *telemetry.Telemetry) {
	e.tel = tel
	if tel.Enabled() {
		e.flight = telemetry.NewFlightRecorder()
	} else {
		e.flight = nil
	}
}

// Telemetry returns the hub attached with Instrument (nil when
// uninstrumented).
func (e *Evaluator) Telemetry() *telemetry.Telemetry { return e.tel }

// InjectFaults attaches a deterministic fault-injection plan (see
// internal/faults and ParseFaults): at each stage boundary a matching
// rule stalls, panics, fails, or poisons the stage output with NaN,
// exercising exactly the recovery paths real pathological points take.
// A nil or empty plan (the default) disables injection. Call before the
// first Evaluate.
func (e *Evaluator) InjectFaults(plan *faults.Plan) {
	if plan != nil && plan.Empty() {
		plan = nil
	}
	e.injected = plan
}

// SetStageTimeout bounds each pipeline stage's wall time: a stage that
// exceeds d fails its point with ErrStageTimeout. The check runs at the
// stage boundary — a stuck stage is not preempted, but its point is
// quarantined instead of silently dominating the run, and the memo
// cache never records its partial result. Zero (the default) disables
// the check.
func (e *Evaluator) SetStageTimeout(d time.Duration) { e.stageTimeout = d }

// QuarantinedCount returns the number of distinct design points whose
// evaluation failed and was quarantined.
func (e *Evaluator) QuarantinedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.failed)
}

// QuarantineLedger returns the quarantined points with their failing
// stage and failure class, sorted by design point for stable reports.
func (e *Evaluator) QuarantineLedger() []QuarantinedPoint {
	e.mu.Lock()
	out := make([]QuarantinedPoint, 0, len(e.failed))
	for p, ee := range e.failed {
		out = append(out, QuarantinedPoint{Point: p, Stage: ee.Stage, Reason: ee.Reason(), Trace: ee.Trace})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Point.Less(out[j].Point) })
	return out
}

// NewEvaluator builds an evaluator; zero fields of models are filled with
// defaults.
func NewEvaluator(w dnn.Workload, opts Options, cons Constraints, models Models) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	zero := Models{}
	if models == zero {
		models = DefaultModels()
	}
	if err := models.Power.Validate(); err != nil {
		return nil, err
	}
	if err := models.DRAM.Validate(); err != nil {
		return nil, err
	}
	if err := models.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxChiplets == 0 {
		opts.MaxChiplets = len(w.Networks)
	}
	e := &Evaluator{
		Workload: w,
		Opts:     opts,
		Cons:     cons,
		Models:   models,
		sim:      systolic.NewSimulator(),
		cache:    make(map[DesignPoint]*Evaluation),
		failed:   make(map[DesignPoint]*EvalError),
	}
	if opts.Memo {
		// A private store; callers that want cross-evaluator or
		// cross-process sharing attach one with UseMemo / LoadMemoDir.
		e.memo = memo.NewStore()
	}
	if opts.Surrogate {
		e.sur = surrogate.New(opts.SurrogateK)
	}
	return e, nil
}

// Explored returns the number of distinct design points evaluated so far
// (used for the paper's "<15% of the space explored" claim).
func (e *Evaluator) Explored() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Evaluations returns the total number of Evaluate/EvaluateFull calls,
// including the ones served from the memo cache. The gap between
// Evaluations and Explored is the annealers' revisit traffic.
func (e *Evaluator) Evaluations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits + e.misses
}

// CacheHitRate returns the fraction of Evaluate calls served from the
// memo cache (0 before the first call) — the single source of truth the
// CLIs report instead of re-deriving it from Evaluations and Explored.
func (e *Evaluator) CacheHitRate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hits+e.misses == 0 {
		return 0
	}
	return float64(e.hits) / float64(e.hits+e.misses)
}

// Evaluate runs the pipeline, short-circuiting the expensive thermal
// stage once a cheaper constraint already fails (DSE mode).
func (e *Evaluator) Evaluate(p DesignPoint) (*Evaluation, error) {
	return e.evaluate(p, false)
}

// EvaluateContext is Evaluate with cooperative cancellation: it returns
// ctx.Err() without touching the pipeline when ctx is already done. A
// single evaluation is never interrupted mid-pipeline — cancellation
// latency is bounded by one evaluation — which keeps the memo cache free
// of partial results.
func (e *Evaluator) EvaluateContext(ctx context.Context, p DesignPoint) (*Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.evaluate(p, false)
}

// EvaluateFull runs the whole pipeline including thermal analysis even
// for constraint-violating points (reporting mode: the paper's Tables
// III and IV show peak temperatures of infeasible MCMs).
func (e *Evaluator) EvaluateFull(p DesignPoint) (*Evaluation, error) {
	return e.evaluate(p, true)
}

// EvaluateFullContext is EvaluateFull with the EvaluateContext
// cancellation contract.
func (e *Evaluator) EvaluateFullContext(ctx context.Context, p DesignPoint) (*Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.evaluate(p, true)
}

func (e *Evaluator) evaluate(p DesignPoint, full bool) (*Evaluation, error) {
	e.mu.Lock()
	if ev, ok := e.cache[p]; ok && (ev.Full || !full) {
		e.hits++
		e.mu.Unlock()
		e.tel.Registry().Counter("evaluator.cache.hit").Inc()
		return ev, nil
	}
	if ee, ok := e.failed[p]; ok {
		// Failures are memoized too: the pipeline is deterministic, so
		// retrying a poisoned point would only fail the same way again.
		e.hits++
		e.mu.Unlock()
		e.tel.Registry().Counter("evaluator.cache.hit").Inc()
		return nil, ee
	}
	e.misses++
	e.mu.Unlock()
	e.tel.Registry().Counter("evaluator.cache.miss").Inc()

	var ev *Evaluation
	var err error
	if e.memo != nil && e.injected == nil {
		// Shared-store path: whole-point results flow through the memo
		// layer (single-flight across chains and evaluators, optionally
		// persisted). Bypassed under fault injection — injected faults
		// must fire at this evaluator's own stage boundaries, so only the
		// stage-level memoization inside the pipeline applies there.
		ev, err = e.sharedEvaluate(p, full)
	} else {
		ev, err = e.pipeline(p, full)
	}
	if err != nil {
		if ee, ok := asEvalError(err); ok {
			e.quarantine(ee)
		}
		return nil, err
	}
	if ev.Feasible {
		e.tel.Registry().Counter("evaluator.feasible").Inc()
	} else {
		e.tel.Registry().Counter("evaluator.infeasible").Inc()
	}
	e.mu.Lock()
	e.cache[p] = ev
	e.mu.Unlock()
	// Completed evaluations train the search surrogate online (a no-op
	// unless Options.Surrogate); see surrogate.go for what qualifies.
	e.trainSurrogate(ev)
	return ev, nil
}

// quarantine records a point-local evaluation failure in the ledger
// (first writer wins when concurrent workers race on one point) and
// bumps the failure counters. Quarantined points count as explored —
// subsequent Evaluate calls return the memoized error without rerunning
// the pipeline.
func (e *Evaluator) quarantine(ee *EvalError) {
	e.mu.Lock()
	if _, dup := e.failed[ee.Point]; dup {
		e.mu.Unlock()
		return
	}
	// Best-effort flight dump: under the shared memo store the pipeline
	// may have run on another goroutine (single-flight), whose ring this
	// goroutine cannot see — the trace is then whatever this goroutine
	// last recorded, possibly nothing.
	if ee.Trace == nil {
		ee.Trace = e.flight.Dump()
	}
	e.failed[ee.Point] = ee
	e.mu.Unlock()
	reason := ee.Reason()
	e.tel.Registry().Counter("eval.quarantined").Inc()
	e.tel.Registry().Counter("eval.quarantine." + reason).Inc()
	fields := map[string]any{
		"dim":    ee.Point.ArrayDim,
		"ics":    ee.Point.ICSUM,
		"stage":  ee.Stage,
		"reason": reason,
	}
	if len(ee.Trace) > 0 {
		fields["trace"] = ee.Trace
	}
	e.tel.Emit("eval.quarantined", fields)
}

// stageGuard closes a stage boundary: it fires any matching injected
// fault (latency stall, panic, injected error, NaN poisoning), enforces
// the per-stage wall-clock budget, and validates that the stage's
// scalar outputs are finite so a NaN cannot flow into downstream
// stages, the memo cache, or a checkpoint.
func (e *Evaluator) stageGuard(stage string, p DesignPoint, began time.Time, vals ...float64) error {
	if e.flight != nil {
		e.flight.Record(fmt.Sprintf("stage.%s dim=%d ics=%d took=%s",
			stage, p.ArrayDim, p.ICSUM, time.Since(began).Round(time.Microsecond)))
	}
	if e.injected != nil {
		if o := e.injected.At(stage, p.ArrayDim, p.ICSUM); o != nil {
			if o.Delay > 0 {
				time.Sleep(o.Delay)
			}
			if o.Panic {
				panic(fmt.Sprintf("injected fault at stage %s for %v", stage, p))
			}
			if o.Err != nil {
				return &EvalError{Stage: stage, Point: p, Err: o.Err}
			}
			if o.NaN {
				vals = append(vals, math.NaN())
			}
		}
	}
	if e.stageTimeout > 0 {
		if el := time.Since(began); el > e.stageTimeout {
			return &EvalError{Stage: stage, Point: p, Err: fmt.Errorf(
				"%w: stage %s took %v (budget %v)", ErrStageTimeout, stage,
				el.Round(time.Millisecond), e.stageTimeout)}
		}
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &EvalError{Stage: stage, Point: p, Err: fmt.Errorf(
				"%w at stage %s", ErrNonFinite, stage)}
		}
	}
	return nil
}

// failStage wraps an organic model error with its stage and point so
// the engines quarantine the point instead of aborting the whole run.
// Errors that are already structured pass through unchanged.
func failStage(stage string, p DesignPoint, err error) error {
	if _, ok := asEvalError(err); ok {
		return err
	}
	return &EvalError{Stage: stage, Point: p, Err: err}
}

// netProfile couples a network's simulation stats with its chiplet-level
// power decomposition.
type netProfile struct {
	stats *systolic.NetworkStats
	dyn   power.Dynamic // chiplet dynamic power decomposition while running this network
}

// pipeline is Fig. 2b: perturbed design point -> mesh estimator ->
// scheduler -> floorplanner -> power/leakage/thermal models -> DRAM
// power, MCM cost, latency -> objective.
func (e *Evaluator) pipeline(p DesignPoint, full bool) (ev *Evaluation, err error) {
	if p.ArrayDim <= 0 || p.ICSUM < 0 {
		return nil, fmt.Errorf("%w: invalid design point %+v", ErrInvalidSpace, p)
	}
	// Panic isolation: a panicking stage (a model bug on a pathological
	// corner, or an injected fault) fails only its own point. The
	// recover attributes the panic to the stage that was running and
	// hands the engines a structured EvalError to quarantine.
	stage := stageSystolic
	defer func() {
		if r := recover(); r != nil {
			ev = nil
			err = &EvalError{Stage: stage, Point: p,
				Err: fmt.Errorf("%w: %v", ErrStagePanic, r)}
		}
	}()
	total := e.tel.StartSpan("pipeline.total")
	defer total.End()
	ev = &Evaluation{Point: p, PeakTempC: math.NaN(), Full: full}
	threeD := e.Opts.Tech == Tech3D
	sramKB := p.SRAMKB()

	// Performance model (SCALE-Sim equivalent), memoized per
	// (array, network).
	began := time.Now()
	span := e.tel.StartSpan("stage.systolic")
	arr := systolic.Array{
		Rows: p.ArrayDim, Cols: p.ArrayDim,
		Dataflow:  e.Opts.Dataflow,
		SRAMBytes: int64(sramKB) * 1024,
	}
	bundle, err := e.profilesFor(arr, threeD)
	if err != nil {
		return nil, failStage(stageSystolic, p, err)
	}
	profiles, est, peakSRAMBw := bundle.profiles, bundle.est, bundle.peakSRAMBw
	span.End()
	if err := e.stageGuard(stageSystolic, p, began, bundle.sumLat, bundle.sumDyn, peakSRAMBw); err != nil {
		return nil, err
	}

	// Area model and mesh estimator.
	stage = stageFloorplan
	began = time.Now()
	span = e.tel.StartSpan("stage.floorplan")
	chip, err := area.Build(p.ArrayDim*p.ArrayDim, est, threeD, peakSRAMBw)
	if err != nil {
		return nil, failStage(stageFloorplan, p, err)
	}
	ev.Chiplet = chip
	// Mesh estimator: the densest grid that fits the interposer at the
	// chosen spacing, capped at the DNN count. The ICS knob therefore
	// controls the chiplet count.
	mesh, err := floorplan.EstimateMesh(e.Cons.InterposerMM, chip.WidthMM, chip.HeightMM, float64(p.ICSUM)/1000, e.Opts.MaxChiplets)
	if err != nil {
		span.End()
		ev.Violations = append(ev.Violations, "area")
		ev.Objective = math.Inf(1)
		return ev, nil
	}
	ev.Mesh = mesh
	place, err := floorplan.Place(e.Cons.InterposerMM, chip.WidthMM, chip.HeightMM, float64(p.ICSUM)/1000, mesh)
	if err != nil {
		return nil, failStage(stageFloorplan, p, err)
	}
	ev.Fits = true
	ev.Placement = place
	if mesh.Count() < e.Opts.MinChiplets {
		// The paper targets multi-accelerator MCMs: independent DNNs run
		// in parallel on distinct chiplets.
		ev.Violations = append(ev.Violations, "mesh")
	}
	span.End()
	if err := e.stageGuard(stageFloorplan, p, began, chip.WidthMM, chip.HeightMM); err != nil {
		return nil, err
	}

	// Scheduler: latency-, power-, and power-density-aware static
	// assignment.
	stage = stageSched
	began = time.Now()
	span = e.tel.StartSpan("stage.sched")
	sp := make([]sched.DNNProfile, len(profiles))
	var totalMACs int64
	for i, pr := range profiles {
		sp[i] = sched.DNNProfile{
			Name:       e.Workload.Networks[i].Name,
			LatencySec: pr.stats.LatencySeconds(e.Opts.FreqHz),
			PowerWatts: pr.dyn.Total(),
		}
		totalMACs += pr.stats.MACs
	}
	schedule, err := e.buildSchedule(sp, mesh.Count(), place.CornerFirstOrder())
	if err != nil {
		return nil, failStage(stageSched, p, err)
	}
	ev.Schedule = schedule
	ev.MakespanSec = schedule.MakespanSec
	ev.LatencyFactor = schedule.MakespanSec * e.Cons.FPS
	ev.OPS = 2 * float64(totalMACs) / schedule.MakespanSec
	ev.PeakOPS = 2 * float64(mesh.Count()) * float64(p.ArrayDim) * float64(p.ArrayDim) * e.Opts.FreqHz
	if ev.LatencyFactor > 1+1e-9 {
		ev.Violations = append(ev.Violations, "latency")
	}
	span.End()
	if err := e.stageGuard(stageSched, p, began, ev.MakespanSec, ev.LatencyFactor, ev.OPS, ev.PeakOPS); err != nil {
		return nil, err
	}

	// DRAM power: per-chiplet channel provisioning by peak bandwidth
	// (max over the chiplet's DNNs), traffic averaged over the frame.
	stage = stageDRAM
	began = time.Now()
	span = e.tel.StartSpan("stage.dram")
	var channels int
	var frameBytes float64
	ev.ChipletTraffic = make([]int64, mesh.Count())
	for c, dnns := range schedule.ChipletDNNs {
		var need int
		for _, d := range dnns {
			bw := profiles[d].stats.PeakDRAMBw * e.Opts.FreqHz
			if ch := e.Models.DRAM.ChannelsFor(bw); ch > need {
				need = ch
			}
			frameBytes += float64(profiles[d].stats.DRAMBytes)
			ev.ChipletTraffic[c] += profiles[d].stats.DRAMBytes
		}
		if len(dnns) > 0 && need == 0 {
			need = 1
		}
		channels += need
	}
	ev.DRAMChannels = channels
	ev.DRAMPowerW = e.Models.DRAM.Power(channels, frameBytes*e.Cons.FPS)
	span.End()
	if err := e.stageGuard(stageDRAM, p, began, ev.DRAMPowerW, frameBytes); err != nil {
		return nil, err
	}

	// MCM cost.
	stage = stageCost
	began = time.Now()
	span = e.tel.StartSpan("stage.cost")
	spec := cost.ChipletSpec{ThreeD: threeD}
	if threeD {
		spec.ArrayDieMM2 = chip.ArrayTierMM2()
		spec.SRAMDieMM2 = chip.SRAMTierMM2()
	} else {
		spec.ArrayDieMM2 = chip.SiliconMM2()
	}
	bd, err := e.Models.Cost.MCM(spec, mesh.Count(), e.Cons.InterposerMM*e.Cons.InterposerMM)
	if err != nil {
		return nil, failStage(stageCost, p, err)
	}
	ev.MCMCost = bd
	span.End()

	// Objective, Eq. (6).
	ev.Objective = e.Opts.Alpha*bd.Total/e.Opts.RefCostUSD + e.Opts.Beta*ev.DRAMPowerW/e.Opts.RefDRAMWatts
	if err := e.stageGuard(stageCost, p, began, bd.Total, ev.Objective); err != nil {
		return nil, err
	}

	// Power and thermal models.
	if e.Opts.DisableThermal {
		// SC2 mode: dynamic power only, no temperature evaluation.
		var worst float64
		for _, ph := range schedule.Phases {
			var dyn float64
			for _, d := range ph.Running {
				if d >= 0 {
					dyn += profiles[d].dyn.Total()
				}
			}
			if dyn > worst {
				worst = dyn
			}
		}
		ev.DynamicPowerW = worst
		ev.TotalPowerW = worst
		if worst > e.Cons.PowerBudgetW {
			ev.Violations = append(ev.Violations, "power")
		}
		ev.Feasible = len(ev.Violations) == 0
		return ev, nil
	}

	// DSE short-circuit: skip thermal once a cheap constraint failed,
	// unless a full report is requested.
	if !full && len(ev.Violations) > 0 {
		ev.Objective = math.Inf(1)
		return ev, nil
	}
	// Cheap dynamic-power pre-screen: leakage only adds power, so a
	// dynamic-only violation is already final (but full mode still wants
	// the temperature).
	if !full {
		var worstDyn float64
		for _, ph := range schedule.Phases {
			var dyn float64
			for _, d := range ph.Running {
				if d >= 0 {
					dyn += profiles[d].dyn.Total()
				}
			}
			if dyn > worstDyn {
				worstDyn = dyn
			}
		}
		if worstDyn > e.Cons.PowerBudgetW {
			ev.DynamicPowerW = worstDyn
			ev.TotalPowerW = worstDyn
			ev.Violations = append(ev.Violations, "power")
			ev.Objective = math.Inf(1)
			return ev, nil
		}
	}

	stage = stageThermal
	began = time.Now()
	span = e.tel.StartSpan("stage.thermal")
	err = e.thermalAnalysis(ev, profiles, place, est)
	span.End()
	if err != nil {
		return nil, failStage(stageThermal, p, err)
	}
	tempOut := ev.PeakTempC
	if ev.Runaway {
		// A runaway point is a valid infeasible evaluation; its clamped
		// peak temperature is not required to be meaningful.
		tempOut = 0
	}
	if err := e.stageGuard(stageThermal, p, began, ev.TotalPowerW, ev.DynamicPowerW, ev.LeakageW, tempOut); err != nil {
		return nil, err
	}

	if ev.TotalPowerW > e.Cons.PowerBudgetW {
		ev.Violations = append(ev.Violations, "power")
	}
	if ev.Runaway {
		ev.Violations = append(ev.Violations, "runaway")
	} else if ev.PeakTempC > e.Cons.TempBudgetC {
		ev.Violations = append(ev.Violations, "temperature")
	}
	ev.Feasible = len(ev.Violations) == 0
	if !ev.Feasible && !full {
		ev.Objective = math.Inf(1)
	}
	return ev, nil
}

// AssessNoP quantifies the network-on-package overhead of an evaluated
// MCM: each chiplet's link to its edge DRAM PHY. The paper assumes this
// overhead is negligible ("ICS does not significantly impact DRAM
// latency"); this method lets callers verify that for any configuration.
func (e *Evaluator) AssessNoP(ev *Evaluation, params nop.Params) (*nop.Assessment, error) {
	if ev == nil || ev.Placement == nil {
		return nil, fmt.Errorf("core: evaluation carries no placement")
	}
	return params.Assess(ev.Placement, ev.ChipletTraffic, e.Cons.FPS)
}
