package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"tesa/internal/area"
	"tesa/internal/cost"
	"tesa/internal/dnn"
	"tesa/internal/floorplan"
	"tesa/internal/nop"
	"tesa/internal/power"
	"tesa/internal/sched"
	"tesa/internal/sram"
	"tesa/internal/systolic"
	"tesa/internal/telemetry"
	"tesa/internal/thermal"
)

// Evaluation is the full characterization of one MCM design point — the
// outputs of the Fig. 2b pipeline that the optimizer consumes plus
// everything the paper's tables report.
type Evaluation struct {
	Point DesignPoint

	// Feasible is true when every user-defined constraint holds.
	Feasible bool
	// Violations lists the violated constraints ("area", "latency",
	// "power", "temperature", "runaway").
	Violations []string
	// Fits is false when no chiplet mesh fits the interposer at all; the
	// remaining fields are then zero.
	Fits bool

	Mesh    floorplan.Mesh
	Chiplet area.Chiplet
	// MakespanSec is the workload completion time; the latency
	// constraint is MakespanSec <= 1/FPS.
	MakespanSec float64
	// LatencyFactor is MakespanSec * FPS: >1 means violation (the paper
	// reports "36x longer than 30 fps" style factors).
	LatencyFactor float64

	// PeakTempC is the maximum junction temperature across all execution
	// phases (NaN when thermal evaluation is disabled).
	PeakTempC float64
	// Runaway marks a diverging leakage-temperature fixed point.
	Runaway bool
	// LeakIters is the maximum leakage-temperature iterations over
	// phases.
	LeakIters int

	// TotalPowerW is the worst-phase chiplet power including leakage at
	// the converged temperature; DynamicPowerW is its dynamic part.
	TotalPowerW   float64
	DynamicPowerW float64
	LeakageW      float64

	MCMCost      cost.Breakdown
	DRAMPowerW   float64
	DRAMChannels int
	// OPS is the sustained operations per second during workload
	// execution: 2 operations per MAC over the makespan. PeakOPS is the
	// hardware's peak capacity (2 x PEs x chiplets x frequency), the
	// paper's Sec. IV-B.3 comparison metric.
	OPS     float64
	PeakOPS float64

	// Objective is Eq. (6): Alpha*cost/RefCost + Beta*DRAM/RefDRAM.
	Objective float64

	// Schedule is the static DNN-to-chiplet assignment.
	Schedule *sched.Schedule
	// Placement is the concrete floorplan (chiplet rectangles on the
	// interposer).
	Placement *floorplan.Placement
	// ChipletTraffic is each chiplet's DRAM traffic in bytes per frame.
	ChipletTraffic []int64
	// Hottest, when full evaluation was requested, is the thermal field
	// of the hottest phase (for Fig. 6 maps).
	Hottest *thermal.Result
	// HottestStack is the stack that produced Hottest.
	HottestStack *thermal.Stack
	// Full records whether thermal analysis ran to completion even after
	// an early constraint violation (reporting mode).
	Full bool
}

// Evaluator runs the TESA pipeline for design points of one workload
// under one (Options, Constraints) setting, memoizing both the
// performance simulations and whole-point evaluations — the paper's
// SCALE-Sim runs take minutes to hours per point, which is exactly why
// the real tool-chain caches too.
type Evaluator struct {
	Workload dnn.Workload
	Opts     Options
	Cons     Constraints
	Models   Models

	sim *systolic.Simulator

	// tel is the optional observability hub (nil = disabled fast path);
	// see Instrument.
	tel *telemetry.Telemetry

	mu     sync.Mutex
	cache  map[DesignPoint]*Evaluation
	hits   int // Evaluate calls served from the memo cache
	misses int // Evaluate calls that ran the pipeline
}

// Instrument attaches an observability hub: the pipeline records
// per-stage wall time into tel's timing histograms and counts cache
// hits/misses, and Optimize forwards annealer progress as trace events.
// A nil tel (the default) disables all of it at the cost of a nil check
// per probe. Call before the first Evaluate; the hub may be shared
// across evaluators.
func (e *Evaluator) Instrument(tel *telemetry.Telemetry) { e.tel = tel }

// Telemetry returns the hub attached with Instrument (nil when
// uninstrumented).
func (e *Evaluator) Telemetry() *telemetry.Telemetry { return e.tel }

// NewEvaluator builds an evaluator; zero fields of models are filled with
// defaults.
func NewEvaluator(w dnn.Workload, opts Options, cons Constraints, models Models) (*Evaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	zero := Models{}
	if models == zero {
		models = DefaultModels()
	}
	if err := models.Power.Validate(); err != nil {
		return nil, err
	}
	if err := models.DRAM.Validate(); err != nil {
		return nil, err
	}
	if err := models.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxChiplets == 0 {
		opts.MaxChiplets = len(w.Networks)
	}
	return &Evaluator{
		Workload: w,
		Opts:     opts,
		Cons:     cons,
		Models:   models,
		sim:      systolic.NewSimulator(),
		cache:    make(map[DesignPoint]*Evaluation),
	}, nil
}

// Explored returns the number of distinct design points evaluated so far
// (used for the paper's "<15% of the space explored" claim).
func (e *Evaluator) Explored() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Evaluations returns the total number of Evaluate/EvaluateFull calls,
// including the ones served from the memo cache. The gap between
// Evaluations and Explored is the annealers' revisit traffic.
func (e *Evaluator) Evaluations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits + e.misses
}

// CacheHitRate returns the fraction of Evaluate calls served from the
// memo cache (0 before the first call) — the single source of truth the
// CLIs report instead of re-deriving it from Evaluations and Explored.
func (e *Evaluator) CacheHitRate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hits+e.misses == 0 {
		return 0
	}
	return float64(e.hits) / float64(e.hits+e.misses)
}

// Evaluate runs the pipeline, short-circuiting the expensive thermal
// stage once a cheaper constraint already fails (DSE mode).
func (e *Evaluator) Evaluate(p DesignPoint) (*Evaluation, error) {
	return e.evaluate(p, false)
}

// EvaluateContext is Evaluate with cooperative cancellation: it returns
// ctx.Err() without touching the pipeline when ctx is already done. A
// single evaluation is never interrupted mid-pipeline — cancellation
// latency is bounded by one evaluation — which keeps the memo cache free
// of partial results.
func (e *Evaluator) EvaluateContext(ctx context.Context, p DesignPoint) (*Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.evaluate(p, false)
}

// EvaluateFull runs the whole pipeline including thermal analysis even
// for constraint-violating points (reporting mode: the paper's Tables
// III and IV show peak temperatures of infeasible MCMs).
func (e *Evaluator) EvaluateFull(p DesignPoint) (*Evaluation, error) {
	return e.evaluate(p, true)
}

// EvaluateFullContext is EvaluateFull with the EvaluateContext
// cancellation contract.
func (e *Evaluator) EvaluateFullContext(ctx context.Context, p DesignPoint) (*Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.evaluate(p, true)
}

func (e *Evaluator) evaluate(p DesignPoint, full bool) (*Evaluation, error) {
	e.mu.Lock()
	if ev, ok := e.cache[p]; ok && (ev.Full || !full) {
		e.hits++
		e.mu.Unlock()
		e.tel.Registry().Counter("evaluator.cache.hit").Inc()
		return ev, nil
	}
	e.misses++
	e.mu.Unlock()
	e.tel.Registry().Counter("evaluator.cache.miss").Inc()

	ev, err := e.pipeline(p, full)
	if err != nil {
		return nil, err
	}
	if ev.Feasible {
		e.tel.Registry().Counter("evaluator.feasible").Inc()
	} else {
		e.tel.Registry().Counter("evaluator.infeasible").Inc()
	}
	e.mu.Lock()
	e.cache[p] = ev
	e.mu.Unlock()
	return ev, nil
}

// netProfile couples a network's simulation stats with its chiplet-level
// power decomposition.
type netProfile struct {
	stats *systolic.NetworkStats
	dyn   power.Dynamic // chiplet dynamic power decomposition while running this network
}

// pipeline is Fig. 2b: perturbed design point -> mesh estimator ->
// scheduler -> floorplanner -> power/leakage/thermal models -> DRAM
// power, MCM cost, latency -> objective.
func (e *Evaluator) pipeline(p DesignPoint, full bool) (*Evaluation, error) {
	if p.ArrayDim <= 0 || p.ICSUM < 0 {
		return nil, fmt.Errorf("%w: invalid design point %+v", ErrInvalidSpace, p)
	}
	total := e.tel.StartSpan("pipeline.total")
	defer total.End()
	ev := &Evaluation{Point: p, PeakTempC: math.NaN(), Full: full}
	threeD := e.Opts.Tech == Tech3D
	sramKB := p.SRAMKB()

	// Performance model (SCALE-Sim equivalent), memoized per
	// (array, network).
	span := e.tel.StartSpan("stage.systolic")
	arr := systolic.Array{
		Rows: p.ArrayDim, Cols: p.ArrayDim,
		Dataflow:  e.Opts.Dataflow,
		SRAMBytes: int64(sramKB) * 1024,
	}
	profiles := make([]netProfile, len(e.Workload.Networks))
	est, err := sram.Estimate22nm(int64(sramKB) * 1024)
	if err != nil {
		return nil, err
	}
	var peakSRAMBw float64
	for i := range e.Workload.Networks {
		st, err := e.sim.Simulate(arr, &e.Workload.Networks[i])
		if err != nil {
			return nil, err
		}
		profiles[i] = netProfile{
			stats: st,
			dyn:   e.Models.Power.ChipletDynamic(st, est, e.Opts.FreqHz, threeD),
		}
		if st.PeakSRAMBytesPerCycle > peakSRAMBw {
			peakSRAMBw = st.PeakSRAMBytesPerCycle
		}
	}
	span.End()

	// Area model and mesh estimator.
	span = e.tel.StartSpan("stage.floorplan")
	chip, err := area.Build(p.ArrayDim*p.ArrayDim, est, threeD, peakSRAMBw)
	if err != nil {
		return nil, err
	}
	ev.Chiplet = chip
	// Mesh estimator: the densest grid that fits the interposer at the
	// chosen spacing, capped at the DNN count. The ICS knob therefore
	// controls the chiplet count.
	mesh, err := floorplan.EstimateMesh(e.Cons.InterposerMM, chip.WidthMM, chip.HeightMM, float64(p.ICSUM)/1000, e.Opts.MaxChiplets)
	if err != nil {
		span.End()
		ev.Violations = append(ev.Violations, "area")
		ev.Objective = math.Inf(1)
		return ev, nil
	}
	ev.Mesh = mesh
	place, err := floorplan.Place(e.Cons.InterposerMM, chip.WidthMM, chip.HeightMM, float64(p.ICSUM)/1000, mesh)
	if err != nil {
		return nil, err
	}
	ev.Fits = true
	ev.Placement = place
	if mesh.Count() < e.Opts.MinChiplets {
		// The paper targets multi-accelerator MCMs: independent DNNs run
		// in parallel on distinct chiplets.
		ev.Violations = append(ev.Violations, "mesh")
	}
	span.End()

	// Scheduler: latency-, power-, and power-density-aware static
	// assignment.
	span = e.tel.StartSpan("stage.sched")
	sp := make([]sched.DNNProfile, len(profiles))
	var totalMACs int64
	for i, pr := range profiles {
		sp[i] = sched.DNNProfile{
			Name:       e.Workload.Networks[i].Name,
			LatencySec: pr.stats.LatencySeconds(e.Opts.FreqHz),
			PowerWatts: pr.dyn.Total(),
		}
		totalMACs += pr.stats.MACs
	}
	schedule, err := sched.Build(sp, mesh.Count(), place.CornerFirstOrder())
	if err != nil {
		return nil, err
	}
	ev.Schedule = schedule
	ev.MakespanSec = schedule.MakespanSec
	ev.LatencyFactor = schedule.MakespanSec * e.Cons.FPS
	ev.OPS = 2 * float64(totalMACs) / schedule.MakespanSec
	ev.PeakOPS = 2 * float64(mesh.Count()) * float64(p.ArrayDim) * float64(p.ArrayDim) * e.Opts.FreqHz
	if ev.LatencyFactor > 1+1e-9 {
		ev.Violations = append(ev.Violations, "latency")
	}
	span.End()

	// DRAM power: per-chiplet channel provisioning by peak bandwidth
	// (max over the chiplet's DNNs), traffic averaged over the frame.
	span = e.tel.StartSpan("stage.dram")
	var channels int
	var frameBytes float64
	ev.ChipletTraffic = make([]int64, mesh.Count())
	for c, dnns := range schedule.ChipletDNNs {
		var need int
		for _, d := range dnns {
			bw := profiles[d].stats.PeakDRAMBw * e.Opts.FreqHz
			if ch := e.Models.DRAM.ChannelsFor(bw); ch > need {
				need = ch
			}
			frameBytes += float64(profiles[d].stats.DRAMBytes)
			ev.ChipletTraffic[c] += profiles[d].stats.DRAMBytes
		}
		if len(dnns) > 0 && need == 0 {
			need = 1
		}
		channels += need
	}
	ev.DRAMChannels = channels
	ev.DRAMPowerW = e.Models.DRAM.Power(channels, frameBytes*e.Cons.FPS)
	span.End()

	// MCM cost.
	span = e.tel.StartSpan("stage.cost")
	spec := cost.ChipletSpec{ThreeD: threeD}
	if threeD {
		spec.ArrayDieMM2 = chip.ArrayTierMM2()
		spec.SRAMDieMM2 = chip.SRAMTierMM2()
	} else {
		spec.ArrayDieMM2 = chip.SiliconMM2()
	}
	bd, err := e.Models.Cost.MCM(spec, mesh.Count(), e.Cons.InterposerMM*e.Cons.InterposerMM)
	if err != nil {
		return nil, err
	}
	ev.MCMCost = bd
	span.End()

	// Objective, Eq. (6).
	ev.Objective = e.Opts.Alpha*bd.Total/e.Opts.RefCostUSD + e.Opts.Beta*ev.DRAMPowerW/e.Opts.RefDRAMWatts

	// Power and thermal models.
	if e.Opts.DisableThermal {
		// SC2 mode: dynamic power only, no temperature evaluation.
		var worst float64
		for _, ph := range schedule.Phases {
			var dyn float64
			for _, d := range ph.Running {
				if d >= 0 {
					dyn += profiles[d].dyn.Total()
				}
			}
			if dyn > worst {
				worst = dyn
			}
		}
		ev.DynamicPowerW = worst
		ev.TotalPowerW = worst
		if worst > e.Cons.PowerBudgetW {
			ev.Violations = append(ev.Violations, "power")
		}
		ev.Feasible = len(ev.Violations) == 0
		return ev, nil
	}

	// DSE short-circuit: skip thermal once a cheap constraint failed,
	// unless a full report is requested.
	if !full && len(ev.Violations) > 0 {
		ev.Objective = math.Inf(1)
		return ev, nil
	}
	// Cheap dynamic-power pre-screen: leakage only adds power, so a
	// dynamic-only violation is already final (but full mode still wants
	// the temperature).
	if !full {
		var worstDyn float64
		for _, ph := range schedule.Phases {
			var dyn float64
			for _, d := range ph.Running {
				if d >= 0 {
					dyn += profiles[d].dyn.Total()
				}
			}
			if dyn > worstDyn {
				worstDyn = dyn
			}
		}
		if worstDyn > e.Cons.PowerBudgetW {
			ev.DynamicPowerW = worstDyn
			ev.TotalPowerW = worstDyn
			ev.Violations = append(ev.Violations, "power")
			ev.Objective = math.Inf(1)
			return ev, nil
		}
	}

	span = e.tel.StartSpan("stage.thermal")
	err = e.thermalAnalysis(ev, profiles, place, est)
	span.End()
	if err != nil {
		return nil, err
	}

	if ev.TotalPowerW > e.Cons.PowerBudgetW {
		ev.Violations = append(ev.Violations, "power")
	}
	if ev.Runaway {
		ev.Violations = append(ev.Violations, "runaway")
	} else if ev.PeakTempC > e.Cons.TempBudgetC {
		ev.Violations = append(ev.Violations, "temperature")
	}
	ev.Feasible = len(ev.Violations) == 0
	if !ev.Feasible && !full {
		ev.Objective = math.Inf(1)
	}
	return ev, nil
}

// AssessNoP quantifies the network-on-package overhead of an evaluated
// MCM: each chiplet's link to its edge DRAM PHY. The paper assumes this
// overhead is negligible ("ICS does not significantly impact DRAM
// latency"); this method lets callers verify that for any configuration.
func (e *Evaluator) AssessNoP(ev *Evaluation, params nop.Params) (*nop.Assessment, error) {
	if ev == nil || ev.Placement == nil {
		return nil, fmt.Errorf("core: evaluation carries no placement")
	}
	return params.Assess(ev.Placement, ev.ChipletTraffic, e.Cons.FPS)
}
