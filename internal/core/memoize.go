package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"tesa/internal/area"
	"tesa/internal/cost"
	"tesa/internal/floorplan"
	"tesa/internal/memo"
	"tesa/internal/sched"
	"tesa/internal/sram"
	"tesa/internal/systolic"
)

// ModelVersion names the current revision of every analytical model the
// pipeline composes (systolic, SRAM, area, floorplan, sched, DRAM, cost,
// power, thermal). It versions the persistent memo cache: segments
// written under a different ModelVersion are skipped wholesale on load.
// Bump it whenever a model change can alter any memoized value — that is
// the cache's only invalidation rule, so reviewers should treat a model
// edit without a version bump as a bug.
const ModelVersion = "tesa-models-1"

// UseMemo attaches (and enables) a cross-point memoization store: stage
// results and whole-point DSE evaluations are served by content-addressed
// fingerprint, so evaluators sharing one store — sweep shards, annealing
// chains, the validation experiment's exhaustive and optimizer
// evaluators — compute each distinct input once. Every served value is
// one a plain evaluator would have computed bit-identically, so results
// are unchanged; only wall-clock drops. Call before the first Evaluate.
// Options.Memo makes NewEvaluator attach a fresh private store instead.
//
// The store must not be shared between evaluators with different
// workloads, options, constraints or models — keys are fingerprinted by
// configuration, so mixing is safe but pointless — and eval-level
// sharing is automatically bypassed while a fault-injection plan is
// armed (stage guards must run per point for injection determinism).
func (e *Evaluator) UseMemo(s *memo.Store) { e.memo = s }

// Memo returns the attached memoization store (nil when disabled).
func (e *Evaluator) Memo() *memo.Store { return e.memo }

// MemoStats returns a snapshot of the attached store's traffic counters
// (the zero Stats when memoization is disabled). Shared stores aggregate
// across every attached evaluator.
func (e *Evaluator) MemoStats() memo.Stats {
	if e.memo == nil {
		return memo.Stats{}
	}
	return e.memo.Stats()
}

// WarmStartStats returns the thermal warm-start cache's hit and miss
// counts (both zero unless Options.ThermalFast ran solves).
func (e *Evaluator) WarmStartStats() (hits, misses int64) {
	return e.warm.stats()
}

// LoadMemoDir opens (creating if needed) a persistent memo cache
// directory, seeds store with every record committed under the current
// ModelVersion, and attaches the directory so the store's subsequent
// evaluations are persisted for future processes. The returned closer
// flushes and closes this process's segment; call it before exit.
func LoadMemoDir(store *memo.Store, dir string) (func() error, error) {
	d, err := memo.OpenDisk(dir, ModelVersion)
	if err != nil {
		return nil, err
	}
	for _, rec := range d.Records() {
		switch memo.Kind(rec.K) {
		case "eval":
			var r evalRecord
			if json.Unmarshal(rec.V, &r) == nil {
				store.Seed(rec.K, r.evaluation())
			}
		case "systolic":
			st := new(systolic.NetworkStats)
			if json.Unmarshal(rec.V, st) == nil {
				store.Seed(rec.K, st)
			}
		case "sram":
			var est sram.Estimate
			if json.Unmarshal(rec.V, &est) == nil {
				store.Seed(rec.K, est)
			}
		}
	}
	store.AttachDisk(d)
	return d.Close, nil
}

// fingerprints lazily computes the evaluator's canonical configuration
// fingerprints. cfgFP binds whole-point evaluations to everything that
// can change one: workload content, options (with the memo and
// surrogate switches zeroed — neither changes results), constraints,
// every model parameter, and the stage timeout. perfFP binds the performance-model stages
// (systolic + power decomposition + schedule), which see only the
// workload, tech, frequency, dataflow and power parameters. netFPs
// fingerprint each network's content for per-network systolic keys.
func (e *Evaluator) fingerprints() {
	e.fpOnce.Do(func() {
		o := e.Opts
		o.Memo = false
		// The surrogate, like the memo switch, never changes what an
		// evaluation computes — it only reorders what gets evaluated
		// first — so surrogate-on and surrogate-off runs must share memo
		// records.
		o.Surrogate = false
		o.SurrogateK = 0
		e.cfgFP = memo.Hash("cfg", e.Workload, o, e.Cons, e.Models, int64(e.stageTimeout))
		e.perfFP = memo.Hash("perf", e.Workload, o.Tech, o.FreqHz, fmt.Sprint(o.Dataflow), e.Models.Power)
		e.netFPs = make([]string, len(e.Workload.Networks))
		for i := range e.Workload.Networks {
			e.netFPs[i] = memo.Hash("net", e.Workload.Networks[i])
		}
	})
}

// memoCounter mirrors a store lookup into the telemetry hub as
// memo.hit.<kind> / memo.miss.<kind> counters.
func (e *Evaluator) memoCounter(kind string, hit bool) {
	if !e.tel.Enabled() {
		return
	}
	if hit {
		e.tel.Registry().Counter("memo.hit." + kind).Inc()
	} else {
		e.tel.Registry().Counter("memo.miss." + kind).Inc()
	}
}

// evalKey is the whole-point evaluation key: configuration fingerprint
// plus the design vector.
func (e *Evaluator) evalKey(p DesignPoint) string {
	e.fingerprints()
	return memo.Key("eval", e.cfgFP, strconv.Itoa(p.ArrayDim), strconv.Itoa(p.ICSUM))
}

// sharedEvaluate is the memoized pipeline entry: whole-point DSE
// evaluations are shared through the store (single-flight across
// concurrent chains and evaluators, persisted when a disk is attached),
// while reporting-mode evaluations are only ever served by an equally
// full record — a compact or DSE record is upgraded by recomputing, as
// the local cache does.
func (e *Evaluator) sharedEvaluate(p DesignPoint, full bool) (*Evaluation, error) {
	key := e.evalKey(p)
	if full {
		if v, ok := e.memo.Get(key); ok {
			if ev := v.(*Evaluation); ev.Full {
				e.memoCounter("eval", true)
				return ev, nil
			}
		}
		ev, err := e.pipeline(p, true)
		if err != nil {
			return nil, err
		}
		e.memoCounter("eval", false)
		e.memo.Put(key, ev)
		return ev, nil
	}
	v, hit, err := e.memo.GetOrCompute(key, func() (any, error) {
		ev, err := e.pipeline(p, false)
		if err != nil {
			return nil, err
		}
		e.persistEval(key, ev)
		return ev, nil
	})
	if err != nil {
		return nil, err
	}
	e.memoCounter("eval", hit)
	return v.(*Evaluation), nil
}

// profileBundle is the memoized output of the systolic stage for one
// array dimension: per-network simulation stats and dynamic power, the
// SRAM macro estimate, and the aggregates the stage guard validates.
// Bundles are immutable after construction and shared read-only.
type profileBundle struct {
	profiles   []netProfile
	est        sram.Estimate
	peakSRAMBw float64
	sumLat     float64
	sumDyn     float64
}

// profilesFor returns the systolic-stage bundle for arr, through the
// store when memoization is enabled (keyed by the performance
// fingerprint and the array dimensions — dataflow and SRAM sizing are
// functions of those under one fingerprint).
func (e *Evaluator) profilesFor(arr systolic.Array, threeD bool) (*profileBundle, error) {
	if e.memo == nil {
		return e.computeProfiles(arr, threeD, nil)
	}
	e.fingerprints()
	key := memo.Key("profiles", e.perfFP, strconv.Itoa(arr.Rows), strconv.Itoa(arr.Cols))
	v, hit, err := e.memo.GetOrCompute(key, func() (any, error) {
		return e.computeProfiles(arr, threeD, e.memo)
	})
	e.memoCounter("profiles", hit)
	if err != nil {
		return nil, err
	}
	return v.(*profileBundle), nil
}

// computeProfiles runs the systolic stage: the SRAM macro estimate, one
// simulation per network, and the power decomposition. With a store, the
// per-network simulations and the SRAM scalar are themselves memoized
// (and persisted), so bundles for new configurations reuse every
// sub-result other evaluators or prior runs computed.
func (e *Evaluator) computeProfiles(arr systolic.Array, threeD bool, store *memo.Store) (*profileBundle, error) {
	est, err := e.sramEstimate(arr.SRAMBytes, store)
	if err != nil {
		return nil, err
	}
	b := &profileBundle{
		profiles: make([]netProfile, len(e.Workload.Networks)),
		est:      est,
	}
	for i := range e.Workload.Networks {
		st, err := e.networkStats(arr, i, store)
		if err != nil {
			return nil, err
		}
		b.profiles[i] = netProfile{
			stats: st,
			dyn:   e.Models.Power.ChipletDynamic(st, est, e.Opts.FreqHz, threeD),
		}
		if st.PeakSRAMBytesPerCycle > b.peakSRAMBw {
			b.peakSRAMBw = st.PeakSRAMBytesPerCycle
		}
		// NaN propagates through the sums, so two scalars cover every
		// per-network latency and power output.
		b.sumLat += st.LatencySeconds(e.Opts.FreqHz)
		b.sumDyn += b.profiles[i].dyn.Total()
	}
	return b, nil
}

// networkStats returns one network's simulation stats, memoized by array
// geometry, dataflow, SRAM capacity and network content — deliberately
// not by frequency or power parameters, so records are shared across
// corners that only change those.
func (e *Evaluator) networkStats(arr systolic.Array, i int, store *memo.Store) (*systolic.NetworkStats, error) {
	if store == nil {
		return e.sim.Simulate(arr, &e.Workload.Networks[i])
	}
	key := memo.Key("systolic",
		strconv.Itoa(arr.Rows), strconv.Itoa(arr.Cols),
		fmt.Sprint(arr.Dataflow), strconv.FormatInt(arr.SRAMBytes, 10),
		e.netFPs[i])
	v, hit, err := store.GetOrCompute(key, func() (any, error) {
		st, err := e.sim.Simulate(arr, &e.Workload.Networks[i])
		if err != nil {
			return nil, err
		}
		if store.HasDisk() {
			if raw, err := json.Marshal(st); err == nil {
				_ = store.Persist(key, raw)
			}
		}
		return st, nil
	})
	e.memoCounter("systolic", hit)
	if err != nil {
		return nil, err
	}
	return v.(*systolic.NetworkStats), nil
}

// sramEstimate returns the SRAM macro characterization, memoized by
// capacity alone (the model has no other inputs).
func (e *Evaluator) sramEstimate(bytes int64, store *memo.Store) (sram.Estimate, error) {
	if store == nil {
		return sram.Estimate22nm(bytes)
	}
	key := memo.Key("sram", strconv.FormatInt(bytes, 10))
	v, hit, err := store.GetOrCompute(key, func() (any, error) {
		est, err := sram.Estimate22nm(bytes)
		if err != nil {
			return nil, err
		}
		if store.HasDisk() {
			if raw, err := json.Marshal(est); err == nil {
				_ = store.Persist(key, raw)
			}
		}
		return est, nil
	})
	e.memoCounter("sram", hit)
	if err != nil {
		return sram.Estimate{}, err
	}
	return v.(sram.Estimate), nil
}

// buildSchedule returns the static DNN-to-chiplet assignment, memoized
// by the content of its exact inputs (profile scalars, chiplet count,
// corner order) — immune to model reasoning, since equal inputs mean
// sched.Build returns an equal schedule.
func (e *Evaluator) buildSchedule(sp []sched.DNNProfile, n int, order []int) (*sched.Schedule, error) {
	if e.memo == nil {
		return sched.Build(sp, n, order)
	}
	key := memo.Key("sched", memo.Hash(sp, n, order))
	v, hit, err := e.memo.GetOrCompute(key, func() (any, error) {
		return sched.Build(sp, n, order)
	})
	e.memoCounter("sched", hit)
	if err != nil {
		return nil, err
	}
	return v.(*sched.Schedule), nil
}

// coverageFor returns the floorplan's silicon coverage map at the given
// grid, memoized by the exact geometry class (see covClass): the
// surrogate pre-screen and the retry ladder rasterize the same placement
// up to three times per point, and sweeps revisit the same few
// geometries constantly.
func (e *Evaluator) coverageFor(place *floorplan.Placement, grid int) []float64 {
	if e.memo == nil {
		return place.Coverage(grid)
	}
	key := memo.Key("cov", strconv.Itoa(grid), covClass(place))
	v, hit, _ := e.memo.GetOrCompute(key, func() (any, error) {
		return place.Coverage(grid), nil
	})
	e.memoCounter("cov", hit)
	return v.([]float64)
}

// persistEval appends a compact record of a computed DSE evaluation to
// the store's persistent segment, if one is attached. Only DSE-mode
// results are persisted: reporting-mode evaluations differ in objective
// semantics for infeasible points and carry structures (schedule,
// placement, thermal field) not worth serializing.
func (e *Evaluator) persistEval(key string, ev *Evaluation) {
	if !e.memo.HasDisk() || ev.Full {
		return
	}
	raw, err := json.Marshal(newEvalRecord(ev))
	if err != nil {
		return
	}
	_ = e.memo.Persist(key, raw)
}

// jf is a float64 that survives JSON: NaN and the infinities — which
// infeasible evaluations legitimately carry (PeakTempC, Objective) —
// round-trip as strings, everything else as a shortest-round-trip
// number, so decoded values are bit-identical to encoded ones.
type jf float64

// MarshalJSON implements json.Marshaler.
func (f jf) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jf) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = jf(math.NaN())
		case "+Inf":
			*f = jf(math.Inf(1))
		case "-Inf":
			*f = jf(math.Inf(-1))
		default:
			return fmt.Errorf("core: bad persisted float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jf(v)
	return nil
}

// evalRecord is the persisted form of a DSE evaluation: every scalar a
// DSE consumer (annealer, sweep, progress reporting) reads, none of the
// per-point structures. A decoded record yields a compact Evaluation.
type evalRecord struct {
	Dim             int            `json:"dim"`
	ICS             int            `json:"ics"`
	Feasible        bool           `json:"feasible"`
	Violations      []string       `json:"violations,omitempty"`
	Fits            bool           `json:"fits"`
	Mesh            floorplan.Mesh `json:"mesh"`
	Chiplet         area.Chiplet   `json:"chiplet"`
	MakespanSec     jf             `json:"makespan_sec"`
	LatencyFactor   jf             `json:"latency_factor"`
	PeakTempC       jf             `json:"peak_temp_c"`
	Runaway         bool           `json:"runaway,omitempty"`
	LeakIters       int            `json:"leak_iters"`
	ThermalFidelity string         `json:"thermal_fidelity,omitempty"`
	ThermalRetries  int            `json:"thermal_retries,omitempty"`
	TotalPowerW     jf             `json:"total_power_w"`
	DynamicPowerW   jf             `json:"dynamic_power_w"`
	LeakageW        jf             `json:"leakage_w"`
	MCMCost         cost.Breakdown `json:"mcm_cost"`
	DRAMPowerW      jf             `json:"dram_power_w"`
	DRAMChannels    int            `json:"dram_channels"`
	OPS             jf             `json:"ops"`
	PeakOPS         jf             `json:"peak_ops"`
	Objective       jf             `json:"objective"`
	ChipletTraffic  []int64        `json:"chiplet_traffic,omitempty"`
}

// newEvalRecord flattens a DSE evaluation into its persisted form.
func newEvalRecord(ev *Evaluation) *evalRecord {
	return &evalRecord{
		Dim:             ev.Point.ArrayDim,
		ICS:             ev.Point.ICSUM,
		Feasible:        ev.Feasible,
		Violations:      ev.Violations,
		Fits:            ev.Fits,
		Mesh:            ev.Mesh,
		Chiplet:         ev.Chiplet,
		MakespanSec:     jf(ev.MakespanSec),
		LatencyFactor:   jf(ev.LatencyFactor),
		PeakTempC:       jf(ev.PeakTempC),
		Runaway:         ev.Runaway,
		LeakIters:       ev.LeakIters,
		ThermalFidelity: ev.ThermalFidelity,
		ThermalRetries:  ev.ThermalRetries,
		TotalPowerW:     jf(ev.TotalPowerW),
		DynamicPowerW:   jf(ev.DynamicPowerW),
		LeakageW:        jf(ev.LeakageW),
		MCMCost:         ev.MCMCost,
		DRAMPowerW:      jf(ev.DRAMPowerW),
		DRAMChannels:    ev.DRAMChannels,
		OPS:             jf(ev.OPS),
		PeakOPS:         jf(ev.PeakOPS),
		Objective:       jf(ev.Objective),
		ChipletTraffic:  ev.ChipletTraffic,
	}
}

// evaluation rebuilds the compact Evaluation a record encodes. Schedule,
// Placement and the thermal field are nil — Compact reports that, and
// the engines upgrade a compact winner through EvaluateFull before
// reporting it.
func (r *evalRecord) evaluation() *Evaluation {
	return &Evaluation{
		Point:           DesignPoint{ArrayDim: r.Dim, ICSUM: r.ICS},
		Feasible:        r.Feasible,
		Violations:      r.Violations,
		Fits:            r.Fits,
		Mesh:            r.Mesh,
		Chiplet:         r.Chiplet,
		MakespanSec:     float64(r.MakespanSec),
		LatencyFactor:   float64(r.LatencyFactor),
		PeakTempC:       float64(r.PeakTempC),
		Runaway:         r.Runaway,
		LeakIters:       r.LeakIters,
		ThermalFidelity: r.ThermalFidelity,
		ThermalRetries:  r.ThermalRetries,
		TotalPowerW:     float64(r.TotalPowerW),
		DynamicPowerW:   float64(r.DynamicPowerW),
		LeakageW:        float64(r.LeakageW),
		MCMCost:         r.MCMCost,
		DRAMPowerW:      float64(r.DRAMPowerW),
		DRAMChannels:    r.DRAMChannels,
		OPS:             float64(r.OPS),
		PeakOPS:         float64(r.PeakOPS),
		Objective:       float64(r.Objective),
		ChipletTraffic:  r.ChipletTraffic,
		compact:         true,
	}
}
