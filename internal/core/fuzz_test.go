package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tesa/internal/dnn"
)

// TestPipelineSurvivesSyntheticWorkloads is the end-to-end fuzz: random
// but valid multi-DNN workloads through the full evaluation pipeline at
// random design points must never error, and every produced evaluation
// must satisfy basic invariants (non-negative powers, consistent
// feasibility flags, placement/traffic shapes).
func TestPipelineSurvivesSyntheticWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	space := DefaultSpace()
	for trial := 0; trial < 12; trial++ {
		nDNN := 2 + rng.Intn(5)
		w := dnn.SynthWorkload(rng, nDNN, dnn.DefaultSynthParams())
		opts := DefaultOptions()
		opts.Grid = 20
		if rng.Intn(2) == 0 {
			opts.Tech = Tech3D
		}
		if rng.Intn(2) == 0 {
			opts.FreqHz = 500e6
		}
		cons := DefaultConstraints()
		e, err := NewEvaluator(w, opts, cons, Models{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 6; i++ {
			p := space.Random(rng)
			ev, err := e.EvaluateFull(p)
			if err != nil {
				t.Fatalf("trial %d point %v: %v", trial, p, err)
			}
			checkInvariants(t, ev, opts)
		}
	}
}

func checkInvariants(t *testing.T, ev *Evaluation, opts Options) {
	t.Helper()
	if !ev.Fits {
		if !contains(ev.Violations, "area") {
			t.Errorf("%v: does not fit but no area violation", ev.Point)
		}
		return
	}
	checkFinite(t, ev, opts)
	if ev.MakespanSec <= 0 {
		t.Errorf("%v: non-positive makespan", ev.Point)
	}
	if ev.DynamicPowerW < 0 || ev.LeakageW < 0 || ev.TotalPowerW < ev.DynamicPowerW {
		t.Errorf("%v: inconsistent power %f/%f/%f", ev.Point, ev.DynamicPowerW, ev.LeakageW, ev.TotalPowerW)
	}
	if ev.MCMCost.Total <= 0 || ev.DRAMPowerW <= 0 {
		t.Errorf("%v: non-positive cost/DRAM %f/%f", ev.Point, ev.MCMCost.Total, ev.DRAMPowerW)
	}
	if !math.IsNaN(ev.PeakTempC) && ev.PeakTempC < 45-1e-6 {
		t.Errorf("%v: peak %f below ambient", ev.Point, ev.PeakTempC)
	}
	if ev.Feasible && len(ev.Violations) > 0 {
		t.Errorf("%v: feasible with violations %v", ev.Point, ev.Violations)
	}
	if !ev.Feasible && len(ev.Violations) == 0 {
		t.Errorf("%v: infeasible without violations", ev.Point)
	}
	if len(ev.ChipletTraffic) != ev.Mesh.Count() {
		t.Errorf("%v: traffic entries %d != chiplets %d", ev.Point, len(ev.ChipletTraffic), ev.Mesh.Count())
	}
	if ev.Placement == nil || len(ev.Placement.Chiplets) != ev.Mesh.Count() {
		t.Errorf("%v: placement inconsistent", ev.Point)
	}
	// Every scheduled DNN appears exactly once.
	seen := map[int]int{}
	for _, dnns := range ev.Schedule.ChipletDNNs {
		for _, d := range dnns {
			seen[d]++
		}
	}
	for d, c := range seen {
		if c != 1 {
			t.Errorf("%v: DNN %d scheduled %d times", ev.Point, d, c)
		}
	}
}

// checkFinite asserts the non-finite-containment property the hardened
// pipeline guarantees for every evaluation that fits: no scalar output
// is NaN or Inf (a feasible evaluation additionally may not even have an
// infinite objective). The stage guards are supposed to quarantine any
// point that would violate this before it reaches the memo cache.
func checkFinite(t *testing.T, ev *Evaluation, opts Options) {
	t.Helper()
	scalars := map[string]float64{
		"MakespanSec":   ev.MakespanSec,
		"LatencyFactor": ev.LatencyFactor,
		"TotalPowerW":   ev.TotalPowerW,
		"DynamicPowerW": ev.DynamicPowerW,
		"LeakageW":      ev.LeakageW,
		"MCMCost.Total": ev.MCMCost.Total,
		"DRAMPowerW":    ev.DRAMPowerW,
		"OPS":           ev.OPS,
		"PeakOPS":       ev.PeakOPS,
		"Chiplet.W":     ev.Chiplet.WidthMM,
		"Chiplet.H":     ev.Chiplet.HeightMM,
	}
	if !opts.DisableThermal && ev.ThermalFidelity != "" {
		// Runaway points clamp their peak; every thermal outcome that was
		// produced must still be finite.
		scalars["PeakTempC"] = ev.PeakTempC
	}
	if ev.Feasible {
		scalars["Objective"] = ev.Objective
	} else if math.IsNaN(ev.Objective) {
		t.Errorf("%v: NaN objective", ev.Point)
	}
	for name, v := range scalars {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%v: non-finite %s = %f", ev.Point, name, v)
		}
	}
}

// TestEvaluationsFiniteAtExtremes drives the pipeline across extreme
// SRAM capacities (tiny and huge arrays) and degenerate mesh shapes
// (spacings that squeeze the interposer down to few or no chiplets):
// every evaluation that fits must come back fully finite, and points the
// guards reject must land in the quarantine ledger rather than erroring
// the run in an unstructured way.
func TestEvaluationsFiniteAtExtremes(t *testing.T) {
	dims := []int{8, 16, 64, 256, 512}
	spacings := []int{0, 100, 1000, 2000, 5000}
	for _, tech := range []Tech{Tech2D, Tech3D} {
		opts := DefaultOptions()
		opts.Tech = tech
		opts.Grid = 16
		e, err := NewEvaluator(dnn.ARVRWorkload(), opts, DefaultConstraints(), Models{})
		if err != nil {
			t.Fatal(err)
		}
		for _, dim := range dims {
			for _, ics := range spacings {
				p := DesignPoint{ArrayDim: dim, ICSUM: ics}
				ev, err := e.EvaluateFull(p)
				if err != nil {
					var ee *EvalError
					if !errors.As(err, &ee) {
						t.Errorf("%s %v: unstructured failure %v", tech, p, err)
					}
					continue
				}
				if ev.Fits {
					checkFinite(t, ev, opts)
				}
			}
		}
	}
}

// TestPipelineSingleDNNWorkload: the degenerate one-DNN workload works
// end to end (the mesh cap drops to 1, MinChiplets permitting).
func TestPipelineSingleDNNWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := dnn.SynthWorkload(rng, 1, dnn.DefaultSynthParams())
	opts := DefaultOptions()
	opts.Grid = 20
	opts.MinChiplets = 1
	e, err := NewEvaluator(w, opts, DefaultConstraints(), Models{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.EvaluateFull(DesignPoint{ArrayDim: 64, ICSUM: 500})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Mesh.Count() != 1 {
		t.Errorf("mesh %v, want a single chiplet (cap = #DNNs = 1)", ev.Mesh)
	}
	checkInvariants(t, ev, opts)
}
