package core

import "testing"

// TestRandomSearchFindsFeasible: at a reasonable budget, random search
// finds some feasible point on a feasible space.
func TestRandomSearchFindsFeasible(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	res, err := e.RandomSearch(tinySpace(), 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("random search found nothing")
	}
	if res.Evaluations != 60 {
		t.Errorf("evaluations = %d, want 60", res.Evaluations)
	}
}

// TestGreedyAtLeastAsGoodAsItsStart: the climber only moves on
// improvement, so its result is never worse than a feasible random
// sample would guarantee... concretely: it returns a feasible point and
// respects the budget.
func TestGreedyAtLeastAsGoodAsItsStart(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	res, err := e.GreedySearch(tinySpace(), 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("greedy search found nothing")
	}
	if !res.Best.Feasible {
		t.Error("greedy returned an infeasible point")
	}
	if res.Evaluations > 80 {
		t.Errorf("budget exceeded: %d > 80", res.Evaluations)
	}
}

// TestSearchStrategiesOrdering: with equal budgets on the same space, the
// annealer should not lose badly to random search (both see the same
// cached evaluations; the annealer refines).
func TestSearchStrategiesOrdering(t *testing.T) {
	space := tinySpace()
	eAnneal := testEvaluator(t, Tech2D, 400, 15, 85)
	annealRes, err := eAnneal.Optimize(space, 7)
	if err != nil {
		t.Fatal(err)
	}
	eRand := testEvaluator(t, Tech2D, 400, 15, 85)
	randRes, err := eRand.RandomSearch(space, 7, annealRes.Evaluations)
	if err != nil {
		t.Fatal(err)
	}
	if !annealRes.Found || !randRes.Found {
		t.Fatal("a strategy found nothing")
	}
	if annealRes.Best.Objective > randRes.Best.Objective*1.10 {
		t.Errorf("annealer (%.4f) lost >10%% to random search (%.4f) at equal budget",
			annealRes.Best.Objective, randRes.Best.Objective)
	}
}

func TestSearchValidation(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	if _, err := e.RandomSearch(Space{}, 1, 10); err == nil {
		t.Error("empty space accepted by random search")
	}
	if _, err := e.GreedySearch(Space{}, 1, 10); err == nil {
		t.Error("empty space accepted by greedy search")
	}
}
