package core

import (
	"fmt"
	"strings"
)

// FrequencyRow is one entry of a frequency remedial-action sweep.
type FrequencyRow struct {
	FreqMHz float64
	Found   bool
	Eval    *Evaluation
}

// FrequencySweep runs TESA at each frequency (descending) for one
// (technology, fps, budget) setting — the paper's concluding remedial
// action: "TESA can help chip designers identify thermally infeasible
// solutions and take remedial decisions, e.g., reducing frequency". The
// canonical demonstration: 3-D at 75 C has no solution at 500 MHz but
// does at 400 MHz.
func (cfg *ExperimentConfig) FrequencySweep(tech Tech, fps, budgetC float64, freqsMHz []float64) ([]*FrequencyRow, error) {
	if len(freqsMHz) == 0 {
		return nil, fmt.Errorf("core: no frequencies to sweep")
	}
	var rows []*FrequencyRow
	for _, f := range freqsMHz {
		if f <= 0 {
			return nil, fmt.Errorf("core: non-positive frequency %g MHz", f)
		}
		row, err := cfg.RunCorner(Corner{Tech: tech, FreqMHz: f, FPS: fps, BudgetC: budgetC})
		if err != nil {
			return nil, err
		}
		rows = append(rows, &FrequencyRow{FreqMHz: f, Found: row.Found, Eval: row.Eval})
	}
	return rows, nil
}

// MaxFeasibleFrequency returns the highest frequency in the sweep with a
// feasible MCM, or ok=false when none works.
func MaxFeasibleFrequency(rows []*FrequencyRow) (float64, bool) {
	best, ok := 0.0, false
	for _, r := range rows {
		if r.Found && r.FreqMHz > best {
			best, ok = r.FreqMHz, true
		}
	}
	return best, ok
}

// FormatFrequencySweep renders the sweep.
func FormatFrequencySweep(tech Tech, fps, budgetC float64, rows []*FrequencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "remedial frequency sweep (%s, %.0f fps, %.0f C):\n", tech, fps, budgetC)
	for _, r := range rows {
		if !r.Found {
			fmt.Fprintf(&b, "  %4.0f MHz: solution does not exist\n", r.FreqMHz)
			continue
		}
		fmt.Fprintf(&b, "  %4.0f MHz: %v, %v grid, peak %.1f C\n", r.FreqMHz, r.Eval.Point, r.Eval.Mesh, r.Eval.PeakTempC)
	}
	if f, ok := MaxFeasibleFrequency(rows); ok {
		fmt.Fprintf(&b, "  -> maximum feasible frequency: %.0f MHz\n", f)
	} else {
		b.WriteString("  -> no frequency in the sweep is feasible\n")
	}
	return b.String()
}
