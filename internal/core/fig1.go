package core

import (
	"fmt"
	"strings"
)

// Fig1Scenario is one of the paper's Fig. 1 motivational cases: concrete
// MCMs showing why chiplet size and spacing must be tuned together under
// a thermal constraint.
type Fig1Scenario struct {
	Label       string
	Description string
	Eval        *Evaluation
	// Expect lists the constraint(s) the scenario is meant to violate
	// ("" for the TESA scenario d).
	Expect string
}

// Fig1 reproduces the paper's Fig. 1 scenarios at 400 MHz, 30 fps, 75 C:
//
//	(a) a dense layout of large chiplets violates the thermal constraint;
//	(b) shrinking the chiplets to spread them out violates performance;
//	(c) maximum-size chiplets violate power and temperature;
//	(d) temperature-aware tuning of size and spacing satisfies everything.
func (cfg *ExperimentConfig) Fig1() ([]*Fig1Scenario, error) {
	c := Corner{Tech2D, 400, 30, 75}
	opts, cons := cfg.optionsFor(c)
	opts.Grid = cfg.ReportGrid
	e, err := NewEvaluator(cfg.Workload, opts, cons, cfg.Models)
	if err != nil {
		return nil, err
	}

	scenarios := []*Fig1Scenario{
		{
			Label:       "(a) dense large chiplets",
			Description: "three 240x240 chiplets packed at minimal spacing",
			Expect:      "temperature",
		},
		{
			Label:       "(b) small spread chiplets",
			Description: "six 64x64 chiplets with generous whitespace",
			Expect:      "latency",
		},
		{
			Label:       "(c) maximal chiplets",
			Description: "256x256 chiplets packed to the interposer limit",
			Expect:      "temperature",
		},
	}
	points := []DesignPoint{
		{ArrayDim: 240, ICSUM: 100},
		{ArrayDim: 64, ICSUM: 1000},
		{ArrayDim: 256, ICSUM: 0},
	}
	for i, p := range points {
		ev, err := e.EvaluateFull(p)
		if err != nil {
			return nil, err
		}
		scenarios[i].Eval = ev
	}

	// (d): TESA's own answer.
	row, err := cfg.RunCorner(c)
	if err != nil {
		return nil, err
	}
	d := &Fig1Scenario{
		Label:       "(d) temperature-aware tuning (TESA)",
		Description: "chiplet size and spacing tuned together",
	}
	if row.Found {
		d.Eval = row.Eval
	}
	return append(scenarios, d), nil
}

// FormatFig1 renders the scenario comparison.
func FormatFig1(ss []*Fig1Scenario, cons Constraints) string {
	var b strings.Builder
	b.WriteString("Fig. 1 scenarios (2-D, 400 MHz, 30 fps, 75 C):\n")
	for _, s := range ss {
		if s.Eval == nil {
			fmt.Fprintf(&b, "  %-38s %s -> no configuration\n", s.Label, s.Description)
			continue
		}
		e := s.Eval
		status := "satisfies all constraints"
		if !e.Feasible {
			status = "violates " + strings.Join(e.Violations, "+")
		}
		fmt.Fprintf(&b, "  %-38s %v, %v grid: peak %.1f C, %.1f W, %.2fx latency -> %s\n",
			s.Label, e.Point, e.Mesh, e.PeakTempC, e.TotalPowerW, e.LatencyFactor, status)
	}
	return b.String()
}
