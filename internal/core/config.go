// Package core implements TESA itself: the temperature-aware methodology
// that sizes and places systolic-array accelerator chiplets on an MCM for
// multi-DNN workloads (Fig. 2b of the paper).
//
// The package wires the substrate models together — performance
// (internal/systolic), SRAM (internal/sram), power and leakage
// (internal/power), DRAM (internal/dram), area (internal/area), cost
// (internal/cost), floorplanning (internal/floorplan), thermal
// (internal/thermal) and scheduling (internal/sched) — into a single
// design-point evaluation, and drives it with the multi-start
// simulated-annealing optimizer (internal/anneal). It also implements the
// paper's comparison baselines (SC1, SC2, W1, W2), exhaustive search for
// optimizer validation, and the experiment drivers that regenerate every
// table and figure.
package core

import (
	"fmt"

	"tesa/internal/cost"
	"tesa/internal/dram"
	"tesa/internal/power"
	"tesa/internal/systolic"
	"tesa/internal/thermal"
)

// Tech selects the chiplet integration technology.
type Tech int

const (
	// Tech2D places each systolic array and its SRAMs side by side on a
	// single die.
	Tech2D Tech = iota
	// Tech3D stacks the SRAM tier underneath the systolic-array tier in
	// a face-to-back two-tier chiplet with TSV interconnect (Fig. 3).
	Tech3D
)

// String returns "2D" or "3D".
func (t Tech) String() string {
	if t == Tech3D {
		return "3D"
	}
	return "2D"
}

// Constraints are the user-defined limits a feasible MCM must satisfy
// (Table II).
type Constraints struct {
	// FPS is the frame-rate (latency) constraint: every DNN of the
	// workload must complete within one 1/FPS frame period.
	FPS float64
	// PowerBudgetW bounds the MCM's chiplet power (dynamic plus leakage
	// at the converged temperature) — 15 W for edge devices [23].
	PowerBudgetW float64
	// TempBudgetC bounds the peak junction temperature (75 or 85 C).
	TempBudgetC float64
	// InterposerMM is the (square) interposer side length — 8 mm.
	InterposerMM float64
}

// Validate reports an error for unusable constraint sets.
func (c Constraints) Validate() error {
	if c.FPS <= 0 || c.PowerBudgetW <= 0 || c.TempBudgetC <= 0 || c.InterposerMM <= 0 {
		return fmt.Errorf("core: non-positive constraints %+v", c)
	}
	return nil
}

// DefaultConstraints returns the paper's canonical corner: 30 fps, 15 W,
// 75 C, 8x8 mm.
func DefaultConstraints() Constraints {
	return Constraints{FPS: 30, PowerBudgetW: 15, TempBudgetC: 75, InterposerMM: 8}
}

// Options configure how a design point is evaluated.
type Options struct {
	Tech     Tech
	FreqHz   float64
	Dataflow systolic.Dataflow
	// Grid is the thermal grid resolution (cells per interposer side).
	// The paper uses 125 um cells, i.e. 64 on the 8 mm interposer.
	Grid int
	// Alpha and Beta weight the Eq. (6) objective terms (MCM cost and
	// DRAM power); the paper's experiments use 1 and 1.
	Alpha, Beta float64
	// MaxChiplets caps the mesh at the workload's DNN count to avoid
	// over-provisioning; 0 means "number of DNNs".
	MaxChiplets int
	// MinChiplets, when positive, excludes configurations with fewer
	// chiplets (the paper targets multi-accelerator MCMs). The default
	// space never derives a 1x1 mesh anyway — even the largest chiplet
	// fits at least twice on the 8 mm interposer.
	MinChiplets int
	// RefCostUSD and RefDRAMWatts normalize the objective terms.
	RefCostUSD, RefDRAMWatts float64

	// Baseline behaviour switches (the paper's SC2/W1/W2 adoptions).
	//
	// DisableThermal skips the thermal and leakage models entirely and
	// applies the power constraint to dynamic power only (baseline SC2).
	DisableThermal bool
	// NoLeakage keeps the thermal model but ignores leakage, as W1 [4]
	// does.
	NoLeakage bool
	// LinearLeakage replaces the exponential leakage model with a linear
	// under-estimate, as W2 [3] does.
	LinearLeakage bool

	// ThermalFast enables the fast-path thermal evaluation (the CLIs'
	// -thermal-fast flag): grid solves run through the allocation-free
	// workspace solver (thermal.SolveWorkspace) at the documented fast
	// tolerance (thermal.FastTolScale), warm-started from the cached
	// temperature field of the most recent same-geometry evaluation, and
	// DSE-mode evaluations are pre-screened by the closed-form surrogate
	// pair (thermal.LumpedEstimate / thermal.BoundEstimate) so
	// clearly-infeasible and clearly-feasible points skip the grid solve
	// entirely. Off by default: the zero value reproduces the reference
	// evaluation bit for bit. Feasibility decisions are preserved —
	// surrogate skips fire only outside the SurrogateBandC guard band,
	// and the fast tolerance keeps peaks within ~1e-3 C of the
	// reference (see DESIGN.md, "Thermal solver").
	ThermalFast bool
	// SurrogateBandC is the guard band in Celsius around the temperature
	// budget inside which the surrogate pre-screen refuses to decide and
	// falls through to the grid solve. A hot-skip requires the lumped
	// underestimate to exceed budget+band; a cool-skip requires the
	// column-bound overestimate to stay under budget-band. Larger bands
	// are more conservative (fewer skips). Only consulted when
	// ThermalFast is set; DefaultSurrogateBandC is the validated
	// default.
	SurrogateBandC float64
	// Surrogate enables the learned search ranking (the CLIs' -surrogate
	// flag): an online k-NN/RBF regressor over design-point feature
	// vectors, trained incrementally from this process's completed
	// evaluations (plus the memo store's corpus, including -memo-dir
	// replays, when memoization is on), ranks annealer candidate moves,
	// multi-start seed pools, and sweep shard interiors
	// best-predicted-first. Every proposal the ranking makes is still
	// evaluated by the real pipeline and reported winners are always
	// full-fidelity (the engines re-evaluate them), so the surrogate
	// redirects where the search looks first without deciding any
	// outcome — the same soundness discipline as the ThermalFast
	// pre-screen. Off by default.
	Surrogate bool
	// SurrogateK is the surrogate's neighborhood size and the ranked
	// annealer's candidate-move count; 0 selects the package default
	// (surrogate.DefaultK). Only consulted when Surrogate is set.
	SurrogateK int
	// Memo enables the cross-point memoization layer (the CLIs'
	// -memo flag): stage results (per-network systolic simulations, SRAM
	// scalars, schedules, coverage maps) and whole-point DSE evaluations
	// are served by content-addressed fingerprint from a store shared by
	// every chain in the process. Every served value is one the plain
	// pipeline would have computed bit-identically, so results are
	// unchanged — off by default, like ThermalFast. NewEvaluator creates
	// a private store; Evaluator.UseMemo attaches a shared one and
	// LoadMemoDir adds cross-process persistence.
	Memo bool
}

// DefaultSurrogateBandC is the default surrogate guard band (Celsius)
// around the temperature budget: skips fire only when the closed-form
// estimates clear the budget by this margin, absorbing the model error
// the surrogates carry relative to the grid solver (the lumped estimate
// trails the peak, the column bound leads it; see DESIGN.md).
const DefaultSurrogateBandC = 3

// DefaultOptions returns the evaluation configuration used by the
// paper's experiments: 2-D chiplets, 400 MHz, output-stationary dataflow,
// the 125 um HotSpot grid, and alpha = beta = 1.
func DefaultOptions() Options {
	return Options{
		Tech:           Tech2D,
		FreqHz:         400e6,
		Dataflow:       systolic.OutputStationary,
		Grid:           64,
		Alpha:          1,
		Beta:           1,
		MinChiplets:    2,
		RefCostUSD:     10,
		RefDRAMWatts:   5,
		SurrogateBandC: DefaultSurrogateBandC,
	}
}

// Validate reports an error for unusable options.
func (o Options) Validate() error {
	if o.FreqHz <= 0 {
		return fmt.Errorf("core: non-positive frequency %g", o.FreqHz)
	}
	if o.Grid <= 0 {
		return fmt.Errorf("core: non-positive thermal grid %d", o.Grid)
	}
	if o.Alpha < 0 || o.Beta < 0 || o.Alpha+o.Beta == 0 {
		return fmt.Errorf("core: bad objective weights alpha=%g beta=%g", o.Alpha, o.Beta)
	}
	if o.RefCostUSD <= 0 || o.RefDRAMWatts <= 0 {
		return fmt.Errorf("core: non-positive normalization refs %+v", o)
	}
	if o.Tech != Tech2D && o.Tech != Tech3D {
		return fmt.Errorf("core: unknown tech %d", int(o.Tech))
	}
	if o.SurrogateBandC < 0 {
		return fmt.Errorf("core: negative surrogate guard band %g", o.SurrogateBandC)
	}
	if o.SurrogateK < 0 {
		return fmt.Errorf("core: negative surrogate neighborhood %d", o.SurrogateK)
	}
	return nil
}

// Models bundles the substrate parameter sets; zero-value fields are
// filled with the package defaults by NewEvaluator.
type Models struct {
	Power     power.Params
	DRAM      dram.Params
	Cost      cost.Params
	Materials thermal.Materials
}

// DefaultModels returns the calibrated 22 nm parameter sets.
func DefaultModels() Models {
	return Models{
		Power:     power.Default22nm(),
		DRAM:      dram.DefaultDDR4(),
		Cost:      cost.Default22nm(),
		Materials: thermal.DefaultMaterials(),
	}
}

// runawayLimitC is the junction temperature beyond which the
// leakage-temperature fixed point is classified as thermal runaway: past
// the silicon's maximum rated junction temperature the exponential
// leakage feedback has no acceptable operating point even if the solver
// can still find a mathematical one.
const runawayLimitC = 105
