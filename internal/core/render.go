package core

import (
	"fmt"
	"strings"
)

// FloorplanASCII renders an evaluated MCM's floorplan: the interposer
// outline with each chiplet's systolic-array region ('A') and SRAM region
// ('S'); for 3-D chiplets the stacked footprint renders as '3' with its
// assembly margin as 'm'. Whitespace between chiplets is '.'.
func FloorplanASCII(ev *Evaluation) string {
	if ev == nil || ev.Placement == nil {
		return ""
	}
	const cols = 48
	pl := ev.Placement
	scale := float64(cols) / pl.InterposerMM
	rows := cols / 2 // terminal cells are ~2x taller than wide

	canvas := make([][]byte, rows)
	for j := range canvas {
		canvas[j] = []byte(strings.Repeat(".", cols))
	}
	for _, r := range pl.Chiplets {
		for yj := 0; yj < rows; yj++ {
			for xi := 0; xi < cols; xi++ {
				x := (float64(xi) + 0.5) / scale
				y := (float64(yj) + 0.5) * 2 / scale
				if x < r.X || x >= r.X+r.W || y < r.Y || y >= r.Y+r.H {
					continue
				}
				var ch byte
				if ev.Chiplet.ThreeD {
					ch = '3'
					in := ev.Chiplet.ActiveInsetMM
					if x < r.X+in || x >= r.X+r.W-in || y < r.Y+in || y >= r.Y+r.H-in {
						ch = 'm'
					}
				} else {
					arrayW := r.W * ev.Chiplet.ArrayMM2 / ev.Chiplet.FootprintMM2
					if x < r.X+arrayW {
						ch = 'A'
					} else {
						ch = 'S'
					}
				}
				canvas[yj][xi] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "floorplan %v, %v grid on %.0fx%.0f mm interposer:\n",
		ev.Point, ev.Mesh, pl.InterposerMM, pl.InterposerMM)
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for j := rows - 1; j >= 0; j-- {
		b.WriteString("|")
		b.Write(canvas[j])
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	if ev.Chiplet.ThreeD {
		b.WriteString("3 = stacked array-over-SRAM chiplet, m = assembly margin\n")
	} else {
		b.WriteString("A = systolic array region, S = SRAM region\n")
	}
	return b.String()
}
