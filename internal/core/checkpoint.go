package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"tesa/internal/telemetry"
)

// Sweep checkpoints make multi-hour exhaustive runs crash-safe: the
// sharded engine appends one JSONL record per completed shard (through
// the telemetry sink machinery, so the format matches the -trace
// streams), and a killed run restarts from the recorded shards via
// SweepOptions.ResumeFrom.
//
// A checkpoint stream contains three record kinds:
//
//	checkpoint.header    binds the file to one sweep decomposition:
//	                     {"space": <fingerprint>, "total": N,
//	                      "shard_size": K, "shards": S}
//	checkpoint.shard     one completed shard:
//	                     {"shard": i, "feasible": f, "found": bool,
//	                      "best_dim": d, "best_ics": u, "best_obj": o}
//	checkpoint.poisoned  one quarantined design point, written the
//	                     moment its evaluation failed:
//	                     {"dim": d, "ics": u, "stage": s, "reason": r}
//
// plus the sink's own ts/seq/event envelope. Appending a resumed run to
// the same file is legal: repeated headers must agree, and duplicate
// shard/poisoned records overwrite (they are deterministic, so
// identical). A truncated final line — the tail of a run killed
// mid-write — is ignored, whether it is malformed JSON or a record
// whose fields were cut short; corruption anywhere else fails with
// ErrCheckpointCorrupt.

// checkpoint record event names.
const (
	ckptHeaderEvent = "checkpoint.header"
	ckptShardEvent  = "checkpoint.shard"
	ckptPoisonEvent = "checkpoint.poisoned"
)

// ShardCheckpoint is one completed shard's contribution to a sweep:
// its feasible count and its best feasible point, if any.
type ShardCheckpoint struct {
	Shard    int
	Feasible int
	// Found is false when the shard contained no feasible point; Best
	// and BestObj are then meaningless.
	Found   bool
	Best    DesignPoint
	BestObj float64
}

// CheckpointState is the resumable state recovered from a checkpoint
// stream: the sweep decomposition it was taken under plus every
// completed shard.
type CheckpointState struct {
	// Fingerprint identifies the design space (Space.Fingerprint).
	Fingerprint string
	// Total, ShardSize and Shards describe the decomposition; a resume
	// must use the identical one for shard indices to line up.
	Total     int
	ShardSize int
	Shards    int
	// RunID is the run identifier stamped into the first header, joining
	// the checkpoint to that run's manifest and trace records. Optional
	// ("" when the writing run carried none); resumed runs append their
	// own header with a fresh id, which Load deliberately ignores — the
	// state keeps the id of the run that created the file.
	RunID string
	// Done maps shard index to its record.
	Done map[int]ShardCheckpoint
	// Poisoned maps each quarantined design point to its record; a
	// resumed sweep skips these points instead of re-running a
	// deterministic failure.
	Poisoned map[DesignPoint]QuarantinedPoint
}

// Completed returns the number of checkpointed shards.
func (s *CheckpointState) Completed() int { return len(s.Done) }

// CompletedPoints returns the number of design points covered by the
// checkpointed shards.
func (s *CheckpointState) CompletedPoints() int {
	n := 0
	for idx := range s.Done {
		n += shardLen(idx, s.ShardSize, s.Total)
	}
	return n
}

// ShardSizeError reports a shard-size disagreement between a sweep and
// the checkpoint it was asked to resume from (or between two headers of
// one checkpoint stream): the decomposition's shard indices would not
// line up, so the resume is refused. It wraps ErrCheckpointCorrupt, so
// existing errors.Is checks keep matching; errors.As extracts the
// expected and found sizes and the originating run's id for a precise
// operator message.
type ShardSizeError struct {
	// Expected is the shard size the resuming sweep computed or was
	// configured with; Found is the size recorded in the checkpoint
	// header.
	Expected, Found int
	// RunID is the run id from the checkpoint header that recorded
	// Found ("" when the writing run carried none).
	RunID string
}

// Error formats the mismatch with both sizes and the originating run.
func (e *ShardSizeError) Error() string {
	msg := fmt.Sprintf("%v: shard size mismatch: sweep expects %d points per shard, checkpoint recorded %d",
		ErrCheckpointCorrupt, e.Expected, e.Found)
	if e.RunID != "" {
		msg += fmt.Sprintf(" (written by run %s)", e.RunID)
	}
	return msg
}

// Unwrap ties the typed error into the ErrCheckpointCorrupt family.
func (e *ShardSizeError) Unwrap() error { return ErrCheckpointCorrupt }

// validateFor checks that the state belongs to the given decomposition.
func (s *CheckpointState) validateFor(fingerprint string, total, shardSize, shards int) error {
	if s.Fingerprint != fingerprint {
		return fmt.Errorf("%w: checkpoint space %s does not match swept space %s",
			ErrCheckpointCorrupt, s.Fingerprint, fingerprint)
	}
	if s.ShardSize != shardSize {
		return &ShardSizeError{Expected: shardSize, Found: s.ShardSize, RunID: s.RunID}
	}
	if s.Total != total || s.Shards != shards {
		return fmt.Errorf("%w: checkpoint decomposition %d pts/%d per shard/%d shards vs sweep %d/%d/%d",
			ErrCheckpointCorrupt, s.Total, s.ShardSize, s.Shards, total, shardSize, shards)
	}
	return nil
}

// LoadCheckpoint parses a checkpoint stream previously written by a
// checkpointed sweep. Unknown events are skipped (the file may share a
// sink with other trace events), a truncated final line is tolerated,
// and any other inconsistency returns an error wrapping
// ErrCheckpointCorrupt.
func LoadCheckpoint(r io.Reader) (*CheckpointState, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	st := &CheckpointState{
		Done:     make(map[int]ShardCheckpoint),
		Poisoned: make(map[DesignPoint]QuarantinedPoint),
	}
	sawHeader := false
	// Every per-line failure — malformed JSON or a semantically
	// incomplete record — is deferred through badLine: fatal only if any
	// line follows it, so the torn tail of a SIGKILLed run is tolerated
	// no matter where mid-record the write was cut.
	var badLine error
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if badLine != nil {
			return nil, badLine // garbage followed by more records
		}
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			badLine = fmt.Errorf("%w: line %d: %v", ErrCheckpointCorrupt, line, err)
			continue
		}
		event, _ := rec["event"].(string)
		switch event {
		case ckptHeaderEvent:
			space, _ := rec["space"].(string)
			total, ok1 := ckptInt(rec, "total")
			size, ok2 := ckptInt(rec, "shard_size")
			shards, ok3 := ckptInt(rec, "shards")
			if space == "" || !ok1 || !ok2 || !ok3 {
				badLine = fmt.Errorf("%w: line %d: incomplete header", ErrCheckpointCorrupt, line)
				continue
			}
			if sawHeader {
				// The run id is NOT compared: every resumed run appends a
				// header carrying its own fresh id over the same
				// decomposition.
				if space == st.Fingerprint && total == st.Total && shards == st.Shards && size != st.ShardSize {
					// Same space, different granularity: the precise typed
					// error names both sizes and the run that wrote first.
					return nil, fmt.Errorf("line %d: conflicting headers: %w",
						line, &ShardSizeError{Expected: st.ShardSize, Found: size, RunID: st.RunID})
				}
				if space != st.Fingerprint || total != st.Total || size != st.ShardSize || shards != st.Shards {
					// Two complete, disagreeing headers are never a torn
					// write: the file mixes different sweeps.
					return nil, fmt.Errorf("%w: line %d: conflicting headers", ErrCheckpointCorrupt, line)
				}
				continue
			}
			sawHeader = true
			st.Fingerprint, st.Total, st.ShardSize, st.Shards = space, total, size, shards
			st.RunID, _ = rec["run"].(string)
		case ckptShardEvent:
			if !sawHeader {
				badLine = fmt.Errorf("%w: line %d: shard record before header", ErrCheckpointCorrupt, line)
				continue
			}
			idx, ok := ckptInt(rec, "shard")
			if !ok || idx < 0 || idx >= st.Shards {
				badLine = fmt.Errorf("%w: line %d: shard index out of range", ErrCheckpointCorrupt, line)
				continue
			}
			feas, ok := ckptInt(rec, "feasible")
			if !ok {
				badLine = fmt.Errorf("%w: line %d: missing feasible count", ErrCheckpointCorrupt, line)
				continue
			}
			cp := ShardCheckpoint{Shard: idx, Feasible: feas}
			cp.Found, _ = rec["found"].(bool)
			if cp.Found {
				dim, ok1 := ckptInt(rec, "best_dim")
				ics, ok2 := ckptInt(rec, "best_ics")
				obj, ok3 := rec["best_obj"].(float64)
				if !ok1 || !ok2 || !ok3 {
					badLine = fmt.Errorf("%w: line %d: incomplete best point", ErrCheckpointCorrupt, line)
					continue
				}
				cp.Best = DesignPoint{ArrayDim: dim, ICSUM: ics}
				cp.BestObj = obj
			}
			st.Done[idx] = cp
		case ckptPoisonEvent:
			if !sawHeader {
				badLine = fmt.Errorf("%w: line %d: poisoned record before header", ErrCheckpointCorrupt, line)
				continue
			}
			dim, ok1 := ckptInt(rec, "dim")
			ics, ok2 := ckptInt(rec, "ics")
			if !ok1 || !ok2 {
				badLine = fmt.Errorf("%w: line %d: incomplete poisoned record", ErrCheckpointCorrupt, line)
				continue
			}
			stage, _ := rec["stage"].(string)
			reason, _ := rec["reason"].(string)
			var trace []string
			if arr, ok := rec["trace"].([]any); ok {
				for _, v := range arr {
					if s, ok := v.(string); ok {
						trace = append(trace, s)
					}
				}
			}
			p := DesignPoint{ArrayDim: dim, ICSUM: ics}
			st.Poisoned[p] = QuarantinedPoint{Point: p, Stage: stage, Reason: reason, Trace: trace}
		default:
			// Foreign trace events interleaved in the same sink.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: missing header", ErrCheckpointCorrupt)
	}
	return st, nil
}

// ckptInt extracts an integer field from a decoded JSON record.
func ckptInt(rec map[string]any, key string) (int, bool) {
	f, ok := rec[key].(float64)
	if !ok || f != float64(int(f)) {
		return 0, false
	}
	return int(f), true
}

// WriteCheckpointHeader emits the decomposition-binding record; runID
// ("" = none) joins the stream to the writing run's manifest. Exported
// alongside WriteShardCheckpoint/WritePoisonedCheckpoint so the
// distributed-sweep coordinator can merge worker reports into a ledger
// that is byte-compatible with single-process checkpoints — the same
// LoadCheckpoint/resume path reads both.
func WriteCheckpointHeader(sink telemetry.EventSink, fingerprint string, total, shardSize, shards int, runID string) error {
	fields := map[string]any{
		"space":      fingerprint,
		"total":      total,
		"shard_size": shardSize,
		"shards":     shards,
	}
	if runID != "" {
		fields["run"] = runID
	}
	sink.Emit(ckptHeaderEvent, fields)
	return sink.Flush()
}

// WriteShardCheckpoint emits one completed shard and flushes, so a kill
// immediately after loses at most the in-flight shards.
func WriteShardCheckpoint(sink telemetry.EventSink, cp ShardCheckpoint) error {
	fields := map[string]any{
		"shard":    cp.Shard,
		"feasible": cp.Feasible,
		"found":    cp.Found,
	}
	if cp.Found {
		fields["best_dim"] = cp.Best.ArrayDim
		fields["best_ics"] = cp.Best.ICSUM
		fields["best_obj"] = cp.BestObj
	}
	sink.Emit(ckptShardEvent, fields)
	return sink.Flush()
}

// WritePoisonedCheckpoint emits one quarantined point and flushes
// immediately: the record lands before the point's shard completes, so
// even a kill mid-shard never loses a known-poisoned point.
func WritePoisonedCheckpoint(sink telemetry.EventSink, q QuarantinedPoint) error {
	fields := map[string]any{
		"dim":    q.Point.ArrayDim,
		"ics":    q.Point.ICSUM,
		"stage":  q.Stage,
		"reason": q.Reason,
	}
	if len(q.Trace) > 0 {
		// The failing goroutine's flight-recorder dump rides along, so a
		// poisoned point in a cold checkpoint still explains itself.
		fields["trace"] = q.Trace
	}
	sink.Emit(ckptPoisonEvent, fields)
	return sink.Flush()
}

// shardLen returns the number of points in shard idx of an n-point
// enumeration at the given shard size (the last shard may be short).
func shardLen(idx, size, n int) int {
	lo := idx * size
	hi := lo + size
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	return hi - lo
}
