package core

import (
	"testing"

	"tesa/internal/nop"
)

// TestNoPAssumptionAcrossConfigs verifies the paper's Sec. III assumption
// end to end: for real evaluated MCMs across chiplet counts and ICS
// values, the chiplet-to-DRAM-PHY link latency is orders of magnitude
// below the frame period and the wire power is small against the DRAM
// power — i.e. ignoring the network-on-package in the DSE is sound.
func TestNoPAssumptionAcrossConfigs(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	params := nop.DefaultParams()
	for _, p := range []DesignPoint{
		{ArrayDim: 200, ICSUM: 1700},
		{ArrayDim: 200, ICSUM: 1400},
		{ArrayDim: 96, ICSUM: 0},
		{ArrayDim: 96, ICSUM: 1000},
	} {
		ev, err := e.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Fits {
			continue
		}
		a, err := e.AssessNoP(ev, params)
		if err != nil {
			t.Fatal(err)
		}
		frame := 1.0 / 30
		if a.WorstLatencySec > 1e-4*frame {
			t.Errorf("%v: link latency %.3g s not negligible vs frame %.3g s", p, a.WorstLatencySec, frame)
		}
		if ev.DRAMPowerW > 0 && a.WirePowerW > 0.05*ev.DRAMPowerW {
			t.Errorf("%v: wire power %.3f W exceeds 5%% of DRAM power %.2f W", p, a.WirePowerW, ev.DRAMPowerW)
		}
	}
}

// TestNoPTrafficAccounting: per-chiplet traffic sums to the workload's
// total DRAM bytes.
func TestNoPTrafficAccounting(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.ChipletTraffic) != ev.Mesh.Count() {
		t.Fatalf("traffic entries = %d, want %d", len(ev.ChipletTraffic), ev.Mesh.Count())
	}
	var perChiplet int64
	for _, b := range ev.ChipletTraffic {
		if b <= 0 {
			t.Error("chiplet with zero DRAM traffic despite assigned DNNs")
		}
		perChiplet += b
	}
	// Cross-check against the DRAM power model's traffic term: power =
	// channels*bg + bytes*fps*energy.
	m := DefaultModels().DRAM
	bg := float64(ev.DRAMChannels) * m.BackgroundWattsPerChannel
	traffic := (ev.DRAMPowerW - bg) / m.AccessEnergyPerByte / e.Cons.FPS
	if diff := traffic - float64(perChiplet); diff > 1 || diff < -1 {
		t.Errorf("traffic mismatch: per-chiplet sum %d, implied by power %f", perChiplet, traffic)
	}
}

// TestNoPRequiresPlacement: assessing an area-infeasible evaluation
// fails cleanly.
func TestNoPRequiresPlacement(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	if _, err := e.AssessNoP(&Evaluation{}, nop.DefaultParams()); err == nil {
		t.Error("assessment without placement accepted")
	}
}
