package core

import (
	"sync"

	"tesa/internal/floorplan"
	"tesa/internal/sram"
	"tesa/internal/thermal"
)

// warmQuantMM is the floorplan-similarity quantum of the warm-start
// cache: evaluations whose chiplet dimensions agree within this step
// share a cache slot, so neighboring annealer moves (which typically
// perturb the array dimension or ICS by one step) reuse the previous
// temperature field as the CG starting guess. The guess only affects
// the iteration count, never the fixed point, so the quantum trades hit
// rate against guess quality without any accuracy risk; 0.25 mm keeps
// one-step array-dimension neighbors in the same slot.
const warmQuantMM = 0.25

// warmCacheCap bounds the warm-start cache; one entry per thermal
// geometry class is ample for any realistic sweep (the design space has
// far fewer distinct mesh/chiplet geometries than points).
const warmCacheCap = 256

// warmKey identifies a thermal geometry equivalence class: same grid,
// integration tech (hence layer stack), chiplet mesh, and quantized
// chiplet dimensions. The grid and tech pin the rise vector's length;
// the mesh and dimensions pin its rough shape. Key construction lives in
// geom.go (warmKeyFor) alongside the coverage memo's exact-geometry
// keys, so the two caches' quantization choices stay side by side.
type warmKey struct {
	grid       int
	tech       Tech
	rows, cols int
	wq, hq     int // chiplet width/height in warmQuantMM steps
}

// warmCache is the thread-safe warm-start store. Stored slices are
// immutable after insertion, so concurrent evaluations may share one
// slice as a read-only CG guess while a newer field replaces the map
// entry.
type warmCache struct {
	mu           sync.Mutex
	m            map[warmKey][]float64
	hits, misses int64
}

// get returns the cached temperature-rise field for k, or nil, counting
// the lookup. The returned slice must be treated as read-only.
func (c *warmCache) get(k warmKey) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	rises := c.m[k]
	if rises != nil {
		c.hits++
	} else {
		c.misses++
	}
	return rises
}

// stats returns the cumulative hit and miss counts.
func (c *warmCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// put stores a copy of rises under k, evicting an arbitrary entry once
// the cache is full.
func (c *warmCache) put(k warmKey, rises []float64) {
	if len(rises) == 0 {
		return
	}
	cp := make([]float64, len(rises))
	copy(cp, rises)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[warmKey][]float64, warmCacheCap)
	}
	if _, ok := c.m[k]; !ok && len(c.m) >= warmCacheCap {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = cp
}

// surrogatePrescreen is the fast path's pre-screen gate: before paying
// for a grid solve it brackets the true peak temperature with the two
// closed-form surrogates and skips the solve when the bracket clears
// the budget by the guard band on either side.
//
//   - Hot skip: thermal.LumpedEstimate rounds the spatial peak toward
//     the mean, so lumped > budget+band certifies a genuine temperature
//     violation. The leakage fixed point runs at the (under-estimated)
//     lumped temperature, so the attempt's TotalPowerW under-estimates
//     too, and lumped total power > the power budget certifies a
//     genuine power violation; either certificate (or a lumped-loop
//     runaway) skips the solve. On realistic budgets the power
//     certificate dominates: most hot designs blow the power budget
//     long before the lumped mean temperature clears budget+band.
//   - Cool skip, tier 1: thermal.BoundEstimate leads the peak
//     (no-lateral-spreading column bound), evaluated once with leakage
//     pinned at the test temperature u = budget-band. A bound peak
//     <= u is a super-solution of the monotone leakage-temperature map
//     (G(u) <= u), so the true fixed point — and hence the real peak —
//     lies below u; the attempt's TotalPowerW carries the pinned
//     (over-estimated) leakage, so it clearing the power budget
//     certifies power feasibility too. This tier is O(n) and fully
//     rigorous, but the column bound leads the true peak by 3-5x on
//     well-spread floorplans, so it only fires on very lightly loaded
//     designs.
//   - Cool skip, tier 2: one pinned-leakage CG solve on the coarse
//     (half-resolution) grid. The same super-solution argument bounds
//     the coarse fixed point by u; the guard band then covers the
//     coarse-to-full discretization transfer (measured below 2 C at
//     grid 24 vs 12 across the test sweep, inside the 3 C default
//     band). One coarse solve costs about an eighth of the full-grid
//     leakage fixed point it replaces. u is capped at the runaway
//     classification limit so a certified-cool point can never be one
//     the reference ladder would classify as runaway.
//
// Either skip leaves ev fully populated from the surrogate attempt and
// tags ThermalFidelity "surrogate-hot" / "surrogate-cool"; a true
// return means the grid ladder should not run. Points inside the band —
// where the surrogates cannot decide — fall through to the grid solve,
// so at the default band no feasible point is ever wrongly rejected
// (and no infeasible point wrongly accepted); the fastpath tests sweep
// the design space to verify both directions.
func (e *Evaluator) surrogatePrescreen(ev *Evaluation, phases []phasePower, place *floorplan.Placement, domainMM float64, est sram.Estimate) bool {
	band := e.Opts.SurrogateBandC
	coarse := e.Opts.Grid / 2
	if coarse < 8 {
		coarse = 8
	}
	hot := thermalFidelity{name: "surrogate-hot", grid: coarse, lumped: true}
	if err := e.thermalAttempt(ev, phases, place, domainMM, est, hot); err == nil {
		if ev.Runaway || ev.PeakTempC > e.Cons.TempBudgetC+band || ev.TotalPowerW > e.Cons.PowerBudgetW {
			ev.ThermalFidelity = hot.name
			e.tel.Registry().Counter("thermal.fidelity." + hot.name).Inc()
			e.tel.Registry().Counter("thermal.surrogate.skip.hot").Inc()
			return true
		}
	}
	pin := e.Cons.TempBudgetC - band
	if pin > runawayLimitC {
		pin = runawayLimitC
	}
	if pin > e.Models.Materials.AmbientC {
		coolOK := func(fid thermalFidelity) bool {
			if err := e.thermalAttempt(ev, phases, place, domainMM, est, fid); err != nil {
				return false
			}
			return !ev.Runaway && ev.PeakTempC <= pin && ev.TotalPowerW <= e.Cons.PowerBudgetW
		}
		tiers := []thermalFidelity{
			{name: "surrogate-cool", grid: coarse, bound: true, leakPinC: pin},
			{name: "surrogate-cool", grid: coarse, tolScale: 1, iterScale: 1, leakPinC: pin},
		}
		for _, fid := range tiers {
			if coolOK(fid) {
				ev.ThermalFidelity = fid.name
				e.tel.Registry().Counter("thermal.fidelity." + fid.name).Inc()
				e.tel.Registry().Counter("thermal.surrogate.skip.cool").Inc()
				return true
			}
		}
	}
	e.tel.Registry().Counter("thermal.surrogate.fallthrough").Inc()
	return false
}

// workspace checks a CG workspace out of the pool (workspaces are
// per-goroutine; thermalAttempt holds one for its whole leakage loop).
func (e *Evaluator) workspace() *thermal.Workspace {
	if v := e.wsPool.Get(); v != nil {
		return v.(*thermal.Workspace)
	}
	return thermal.NewWorkspace()
}
