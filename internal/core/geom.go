package core

// Geometry key canonicalization, shared by every cache that identifies a
// floorplan: the thermal warm-start cache (PR 4) and the memo layer's
// coverage-map records. Keeping all key construction in this one file is
// deliberate — the two caches quantize differently on purpose (the
// warm-start cache collapses neighboring geometries because a CG guess
// tolerates small shifts; the coverage memo must be exact because a
// coverage map does not), and deriving both from the same primitives
// makes that difference an explicit choice instead of a drift hazard.
// The geometry regression test (geom_test.go) pins the relationship.

import (
	"math"
	"strconv"
	"strings"

	"tesa/internal/floorplan"
	"tesa/internal/memo"
)

// quantMM quantizes a dimension in millimeters to integer steps of q —
// the single quantization primitive every geometry key builds on.
func quantMM(mm, q float64) int { return int(math.Round(mm / q)) }

// warmKeyFor derives the warm-start cache key of ev's thermal problem at
// the given grid resolution: same grid, integration tech (hence layer
// stack), chiplet mesh, and warmQuantMM-quantized chiplet dimensions.
// Inter-chiplet spacing is deliberately absent — an ICS step shifts the
// hot spots by a fraction of a millimeter, which a CG warm start absorbs
// in a handful of extra iterations, whereas keying on it would separate
// exactly the neighboring moves the cache exists for.
func (e *Evaluator) warmKeyFor(ev *Evaluation, grid int) warmKey {
	return warmKey{
		grid: grid,
		tech: e.Opts.Tech,
		rows: ev.Mesh.Rows,
		cols: ev.Mesh.Cols,
		wq:   quantMM(ev.Chiplet.WidthMM, warmQuantMM),
		hq:   quantMM(ev.Chiplet.HeightMM, warmQuantMM),
	}
}

// covClass renders a placement's exact geometry identity for the
// coverage memo: mesh shape plus unquantized interposer, chiplet and
// spacing dimensions (shortest round-trip decimals, so distinct
// geometries can never collide). Coverage maps are pure functions of
// exactly these values and the grid; unlike warmKeyFor, nothing is
// quantized away, because a shared coverage map must be the map, not a
// neighbor's.
func covClass(p *floorplan.Placement) string {
	return strings.Join([]string{
		strconv.Itoa(p.Mesh.Rows),
		strconv.Itoa(p.Mesh.Cols),
		memo.Fnum(p.InterposerMM),
		memo.Fnum(p.WidthMM),
		memo.Fnum(p.HeightMM),
		memo.Fnum(p.ICSmm),
	}, "|")
}
