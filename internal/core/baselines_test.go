package core

import (
	"strings"
	"testing"

	"tesa/internal/dnn"
)

func baselineSetup(t *testing.T, tech Tech, freqMHz float64) (dnn.Workload, Options, Constraints, Models) {
	t.Helper()
	w := dnn.ARVRWorkload()
	opts := DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = freqMHz * 1e6
	opts.Grid = 24
	cons := DefaultConstraints()
	cons.TempBudgetC = 75
	return w, opts, cons, DefaultModels()
}

// TestSC1MaxParallelism: SC1 must output a six-chiplet MCM (one DNN per
// chiplet) at the maximum ICS, and its ground-truth evaluation must
// exceed the 75 C budget — the paper's Fig. 5 result.
func TestSC1MaxParallelism(t *testing.T) {
	w, opts, cons, models := baselineSetup(t, Tech2D, 500)
	res, err := RunSC1(w, opts, cons, models, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("SC1 found no six-chiplet configuration")
	}
	if res.Chosen.Mesh.Count() != 6 {
		t.Errorf("SC1 mesh %v, want 6 chiplets (one per DNN)", res.Chosen.Mesh)
	}
	if res.Chosen.Point.ICSUM != 1000 {
		t.Errorf("SC1 ICS %d um, want the maximum 1000", res.Chosen.Point.ICSUM)
	}
	// The paper's SC1 chiplet is 180x180 with 1,536 KB; ours must land in
	// the same neighbourhood (the largest array whose 6-chiplet mesh
	// fits).
	if dim := res.Chosen.Point.ArrayDim; dim < 160 || dim > 200 {
		t.Errorf("SC1 array %dx%d, want in the 160..200 band (paper: 180)", dim, dim)
	}
	if res.Actual.PeakTempC <= cons.TempBudgetC && !res.Actual.Runaway {
		t.Errorf("SC1 actually feasible at %.1f C; the paper's point is that it exceeds 75 C", res.Actual.PeakTempC)
	}
}

// TestSC2HotterThanBudget: sizing without temperature picks MCMs that
// violate the strict 75 C budget at 500 MHz (Table IV).
func TestSC2HotterThanBudget(t *testing.T) {
	w, opts, cons, models := baselineSetup(t, Tech2D, 500)
	res, err := RunSC2(w, opts, cons, models, tinySpace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("SC2 found nothing")
	}
	if !res.Chosen.Feasible {
		t.Error("SC2's own pick infeasible under its own (thermal-blind) models")
	}
	if res.Actual.PeakTempC <= 75 && !res.Actual.Runaway {
		t.Errorf("SC2 2-D at 500 MHz actually ran at %.1f C <= 75; expected a violation", res.Actual.PeakTempC)
	}
}

// TestW1OriginalPerformanceViolation: minimizing temperature with no
// constraints lands on tiny, slow chiplets (the paper: 16x16 with a 36x
// latency violation).
func TestW1OriginalPerformanceViolation(t *testing.T) {
	w, opts, cons, models := baselineSetup(t, Tech3D, 500)
	res, err := RunW1(w, opts, cons, models, tinySpaceWide(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("W1 found nothing")
	}
	if dim := res.Chosen.Point.ArrayDim; dim > 64 {
		t.Errorf("W1-original picked %dx%d; minimizing T should drive to the smallest arrays", dim, dim)
	}
	if res.Actual.LatencyFactor < 5 {
		t.Errorf("W1-original latency factor %.1fx, want a gross violation (paper: 36x)", res.Actual.LatencyFactor)
	}
	desc := res.Describe(cons)
	if !strings.Contains(desc, "INFEASIBLE") {
		t.Errorf("Describe() = %q, want INFEASIBLE", desc)
	}
}

// TestW1ConstrainedThermalViolation: adding performance and power
// constraints to W1 still yields a thermally infeasible MCM at 75 C,
// because W1 ignores leakage.
func TestW1ConstrainedThermalViolation(t *testing.T) {
	w, opts, cons, models := baselineSetup(t, Tech3D, 500)
	res, err := RunW1(w, opts, cons, models, tinySpaceWide(), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("W1-constrained found nothing on the reduced space")
	}
	if res.Actual.LatencyFactor > 1 {
		t.Errorf("W1-constrained violates latency (%.2fx); constraints should have prevented that", res.Actual.LatencyFactor)
	}
	if res.Actual.PeakTempC <= 75 && !res.Actual.Runaway {
		t.Errorf("W1-constrained actually feasible (%.1f C); expected thermal violation at 75 C", res.Actual.PeakTempC)
	}
}

// TestW2LinearLeakageUnderestimates: W2's linear leakage model reports
// less leakage power than the exponential ground truth at identical
// operating points.
func TestW2LinearLeakageUnderestimates(t *testing.T) {
	w, opts, cons, models := baselineSetup(t, Tech3D, 500)
	linOpts := opts
	linOpts.LinearLeakage = true
	lin, err := NewEvaluator(w, linOpts, cons, models)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewEvaluator(w, opts, cons, models)
	if err != nil {
		t.Fatal(err)
	}
	p := DesignPoint{ArrayDim: 216, ICSUM: 700}
	evLin, err := lin.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	evExp, err := exp.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if evLin.LeakageW >= evExp.LeakageW {
		t.Errorf("linear leakage %.2f W not below exponential %.2f W", evLin.LeakageW, evExp.LeakageW)
	}
	if evLin.PeakTempC >= evExp.PeakTempC {
		t.Errorf("linear-model temperature %.1f C not below exponential %.1f C", evLin.PeakTempC, evExp.PeakTempC)
	}
}

// tinySpaceWide spans small to large arrays for the W1/W2 studies.
func tinySpaceWide() Space {
	var s Space
	for d := 16; d <= 256; d += 16 {
		s.ArrayDims = append(s.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 250 {
		s.ICSUMs = append(s.ICSUMs, ics)
	}
	return s
}
