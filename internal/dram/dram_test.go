package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := DefaultDDR4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{ChannelPeakBytesPerSec: 1e9, ChannelEfficiency: 1.5, BackgroundWattsPerChannel: 0.1},
		{ChannelPeakBytesPerSec: 1e9, ChannelEfficiency: 0.5, AccessEnergyPerByte: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestChannelsFor(t *testing.T) {
	p := DefaultDDR4()
	sustained := p.SustainedBytesPerSec()
	cases := []struct {
		demand float64
		want   int
	}{
		{0, 1},                // idle chiplet still owns a channel
		{-5, 1},               // defensive
		{sustained / 2, 1},    // fits one channel
		{sustained, 1},        // exactly one channel
		{sustained * 1.01, 2}, // just over
		{sustained * 3.5, 4},
	}
	for _, c := range cases {
		if got := p.ChannelsFor(c.demand); got != c.want {
			t.Errorf("ChannelsFor(%.3g) = %d, want %d", c.demand, got, c.want)
		}
	}
}

func TestChannelsMonotone(t *testing.T) {
	p := DefaultDDR4()
	f := func(a, b uint32) bool {
		da, db := float64(a)*1e6, float64(b)*1e6
		if da > db {
			da, db = db, da
		}
		return p.ChannelsFor(da) <= p.ChannelsFor(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerDecomposition(t *testing.T) {
	p := DefaultDDR4()
	// Background only.
	if got := p.Power(4, 0); math.Abs(got-4*0.25) > 1e-12 {
		t.Errorf("4 idle channels = %g W, want 1.0", got)
	}
	// Traffic term: 1 GB/s at 150 pJ/B = 0.15 W.
	if got := p.Power(0, 1e9); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("1 GB/s traffic = %g W, want 0.15", got)
	}
	// Negative inputs clamp to zero.
	if got := p.Power(-1, -1); got != 0 {
		t.Errorf("negative inputs gave %g W, want 0", got)
	}
}

// TestSC1VsTESAShape: the paper's 63% DRAM power saving comes from fewer
// chiplets (fewer background channels) and bigger SRAMs (less refetch
// traffic). Check the model expresses that: 6 chiplets with 2 channels
// each and 3x the traffic of a 2-chiplet system costs far more than the
// 2-chiplet system.
func TestSC1VsTESAShape(t *testing.T) {
	p := DefaultDDR4()
	sc1 := p.Power(6*2, 6e9)
	tesa := p.Power(2*1, 2e9)
	saving := 1 - tesa/sc1
	if saving < 0.5 {
		t.Errorf("DRAM power saving = %.0f%%, want > 50%% for the SC1-shape scenario", saving*100)
	}
}
