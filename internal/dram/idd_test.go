package dram

import (
	"testing"
)

func TestIDDValidate(t *testing.T) {
	if err := DefaultIDD().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultIDD()
	bad.TCK = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	neg := DefaultIDD()
	neg.IDD4R = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative current accepted")
	}
}

// TestBackgroundWattsBand: a DDR4-2400 x64 rank's standby+refresh power
// lands in the few-hundred-milliwatt band the simple channel model uses.
func TestBackgroundWattsBand(t *testing.T) {
	bg := DefaultIDD().BackgroundWatts()
	if bg < 0.2 || bg < 0 || bg > 0.8 {
		t.Errorf("background = %.3f W, want 0.2..0.8 (model uses 0.25)", bg)
	}
}

// TestReadEnergyBand: the derived per-byte energy sits in the published
// DDR4 range (tens to ~200 pJ/B including I/O), consistent with the
// simple model's 150 pJ/B.
func TestReadEnergyBand(t *testing.T) {
	e := DefaultIDD().ReadEnergyPerByteJ()
	if e < 30e-12 || e > 300e-12 {
		t.Errorf("read energy = %.1f pJ/B, want 30..300", e*1e12)
	}
}

// TestDeriveChannelConsistentWithDefault: deriving the channel model from
// IDD values lands within 2x of the hand-calibrated DefaultDDR4 on both
// parameters — the two characterizations describe the same device class.
func TestDeriveChannelConsistentWithDefault(t *testing.T) {
	derived, err := DefaultIDD().DeriveChannel(19.2e9, 0.70)
	if err != nil {
		t.Fatal(err)
	}
	simple := DefaultDDR4()
	if r := derived.BackgroundWattsPerChannel / simple.BackgroundWattsPerChannel; r < 0.5 || r > 2 {
		t.Errorf("background ratio derived/simple = %.2f, want within 2x", r)
	}
	if r := derived.AccessEnergyPerByte / simple.AccessEnergyPerByte; r < 0.5 || r > 2 {
		t.Errorf("access energy ratio derived/simple = %.2f, want within 2x", r)
	}
}

// TestActivateEnergyPositive: the activate term contributes but does not
// dominate streaming accesses (large pages amortize it).
func TestActivateEnergyPositive(t *testing.T) {
	p := DefaultIDD()
	act := p.ActivateEnergyJ()
	if act <= 0 {
		t.Fatal("activate energy not positive")
	}
	perByteAct := act / float64(p.RowBytes)
	total := p.ReadEnergyPerByteJ()
	if perByteAct > total {
		t.Errorf("activate share %.1f pJ/B exceeds the total %.1f pJ/B", perByteAct*1e12, total*1e12)
	}
}

// TestDeriveChannelRejectsBad: invalid IDD params propagate.
func TestDeriveChannelRejectsBad(t *testing.T) {
	bad := DefaultIDD()
	bad.DevicesPerRank = 0
	if _, err := bad.DeriveChannel(19.2e9, 0.7); err == nil {
		t.Error("invalid IDD params accepted")
	}
	if _, err := DefaultIDD().DeriveChannel(-1, 0.7); err == nil {
		t.Error("negative peak bandwidth accepted")
	}
}
