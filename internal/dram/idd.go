package dram

import "fmt"

// IDD-based power derivation — the structure of the Micron DDR4 system
// power calculator the paper cites. The calculator works from the
// datasheet IDD currents; this file reproduces that derivation and shows
// that the simple two-parameter channel model (background watts +
// access energy per byte) used by the DSE follows from it. The tests pin
// the consistency of DefaultDDR4 with representative DDR4-2400 datasheet
// values.

// IDDParams are per-device DDR4 datasheet currents (in milliamps) and
// voltages, plus the channel organization.
type IDDParams struct {
	VDD float64 // core supply, volts (1.2 V for DDR4)
	VPP float64 // activation pump supply (2.5 V)

	// Datasheet currents in mA (x8 device class, DDR4-2400 typical).
	IDD0  float64 // one-bank activate-precharge current
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh
	IPP0  float64 // VPP activate current

	// Timing, in nanoseconds.
	TCK  float64 // clock period (0.833 ns at 1200 MHz for DDR4-2400)
	TRC  float64 // activate-to-activate (row cycle)
	TRFC float64 // refresh cycle time
	TREF float64 // average refresh interval (7.8 us)

	// Organization.
	DevicesPerRank int // x8 devices forming a x64 channel: 8
	BurstBytes     int // bytes a device transfers per column burst: 8 (BL8 x8)
	RowBytes       int // bytes of one device row (page): 1024
}

// DefaultIDD returns representative DDR4-2400 x8 datasheet values.
func DefaultIDD() IDDParams {
	return IDDParams{
		VDD:  1.2,
		VPP:  2.5,
		IDD0: 48, IDD2N: 34, IDD3N: 43,
		IDD4R: 140, IDD4W: 130, IDD5B: 190,
		IPP0: 3,
		TCK:  0.833, TRC: 45.8, TRFC: 350, TREF: 7800,
		DevicesPerRank: 8,
		BurstBytes:     8,
		RowBytes:       1024,
	}
}

// Validate reports an error for non-physical parameter sets.
func (p IDDParams) Validate() error {
	if p.VDD <= 0 || p.TCK <= 0 || p.TRC <= 0 || p.TRFC <= 0 || p.TREF <= 0 {
		return fmt.Errorf("dram: non-physical IDD params %+v", p)
	}
	if p.DevicesPerRank <= 0 || p.BurstBytes <= 0 || p.RowBytes <= 0 {
		return fmt.Errorf("dram: non-physical organization %+v", p)
	}
	if p.IDD0 < 0 || p.IDD2N < 0 || p.IDD3N < 0 || p.IDD4R < 0 || p.IDD4W < 0 || p.IDD5B < 0 {
		return fmt.Errorf("dram: negative currents %+v", p)
	}
	return nil
}

// BackgroundWatts returns the channel's always-on power: active-standby
// core current plus refresh, per the Micron calculator's background
// terms, over all devices of the rank.
func (p IDDParams) BackgroundWatts() float64 {
	standby := p.VDD * p.IDD3N * 1e-3
	// Refresh: IDD5B flows for tRFC out of every tREFI.
	refresh := p.VDD * (p.IDD5B - p.IDD3N) * 1e-3 * (p.TRFC / p.TREF)
	return float64(p.DevicesPerRank) * (standby + refresh)
}

// ActivateEnergyJ returns the energy of one activate/precharge pair on
// one device (the calculator's IDD0-based term plus the VPP pump).
func (p IDDParams) ActivateEnergyJ() float64 {
	core := p.VDD * (p.IDD0 - p.IDD3N) * 1e-3 * p.TRC * 1e-9
	pump := p.VPP * p.IPP0 * 1e-3 * p.TRC * 1e-9
	return core + pump
}

// ReadEnergyPerByteJ returns the marginal core energy of reading one byte
// through the channel: the IDD4R burst current above standby, spread over
// the bytes the rank moves per burst window, plus the amortized activate
// energy assuming streaming accesses touch each row once.
func (p IDDParams) ReadEnergyPerByteJ() float64 {
	burstCycles := 4.0 // BL8 on a DDR interface
	burstSec := burstCycles * p.TCK * 1e-9
	burstEnergy := float64(p.DevicesPerRank) * p.VDD * (p.IDD4R - p.IDD3N) * 1e-3 * burstSec
	bytesPerBurst := float64(p.DevicesPerRank * p.BurstBytes)
	perByte := burstEnergy / bytesPerBurst
	// Activate amortization: one row activate per RowBytes streamed, on
	// every device of the rank.
	perByte += float64(p.DevicesPerRank) * p.ActivateEnergyJ() / (float64(p.RowBytes) * float64(p.DevicesPerRank))
	// I/O and termination: roughly comparable to the core burst energy
	// on DDR4 single-rank point-to-point channels.
	const ioPJPerByte = 40e-12
	return perByte + ioPJPerByte
}

// DeriveChannel converts the IDD-level characterization into the
// two-parameter channel model the DSE consumes, keeping the given peak
// bandwidth and efficiency.
func (p IDDParams) DeriveChannel(peakBytesPerSec, efficiency float64) (Params, error) {
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	out := Params{
		ChannelPeakBytesPerSec:    peakBytesPerSec,
		ChannelEfficiency:         efficiency,
		BackgroundWattsPerChannel: p.BackgroundWatts(),
		AccessEnergyPerByte:       p.ReadEnergyPerByteJ(),
	}
	return out, out.Validate()
}
