// Package dram reproduces the Micron DDR4 SDRAM system-power model that
// TESA uses for its second objective term: per-channel background power
// (standby, refresh, and I/O termination) plus traffic-proportional
// access energy.
//
// Channel provisioning follows the paper: each chiplet owns independent
// DRAM channels, the count determined by its bandwidth requirement; a
// chiplet that runs multiple DNNs sequentially is assigned the highest
// channel count across those DNNs.
package dram

import (
	"fmt"
	"math"
)

// Params characterizes one DDR4 channel and its access energy. The zero
// value is not valid; use DefaultDDR4.
type Params struct {
	// ChannelPeakBytesPerSec is the raw channel bandwidth (DDR4-2400 x64:
	// 19.2 GB/s).
	ChannelPeakBytesPerSec float64
	// ChannelEfficiency derates the peak to the sustainable bandwidth a
	// streaming accelerator achieves (row-buffer locality of sequential
	// tile fetches keeps this high).
	ChannelEfficiency float64
	// BackgroundWattsPerChannel is the always-on power of one populated
	// channel: device standby currents, refresh, and I/O termination per
	// the Micron power calculator.
	BackgroundWattsPerChannel float64
	// AccessEnergyPerByte is the marginal energy of moving one byte
	// through the channel (activate/precharge amortized, read/write
	// burst, and I/O), in joules per byte.
	AccessEnergyPerByte float64
}

// DefaultDDR4 returns the DDR4-2400 calibration used in the reproduction:
// 19.2 GB/s per x64 channel at 70% sustainable efficiency, 250 mW
// background per channel (low-power mobile parts), and 150 pJ/B access
// energy.
func DefaultDDR4() Params {
	return Params{
		ChannelPeakBytesPerSec:    19.2e9,
		ChannelEfficiency:         0.70,
		BackgroundWattsPerChannel: 0.250,
		AccessEnergyPerByte:       150e-12,
	}
}

// Validate reports an error for non-physical parameter sets.
func (p Params) Validate() error {
	if p.ChannelPeakBytesPerSec <= 0 || p.ChannelEfficiency <= 0 || p.ChannelEfficiency > 1 ||
		p.BackgroundWattsPerChannel < 0 || p.AccessEnergyPerByte < 0 {
		return fmt.Errorf("dram: non-physical params %+v", p)
	}
	return nil
}

// SustainedBytesPerSec returns the usable per-channel bandwidth.
func (p Params) SustainedBytesPerSec() float64 {
	return p.ChannelPeakBytesPerSec * p.ChannelEfficiency
}

// ChannelsFor returns the number of channels needed to sustain the given
// bandwidth demand in bytes per second. Every active chiplet needs at
// least one channel.
func (p Params) ChannelsFor(demandBytesPerSec float64) int {
	if demandBytesPerSec <= 0 {
		return 1
	}
	return int(math.Ceil(demandBytesPerSec / p.SustainedBytesPerSec()))
}

// Power returns the average DRAM power of a memory subsystem with the
// given total channel count and aggregate traffic rate in bytes per
// second.
func (p Params) Power(channels int, trafficBytesPerSec float64) float64 {
	if channels < 0 {
		channels = 0
	}
	if trafficBytesPerSec < 0 {
		trafficBytesPerSec = 0
	}
	return float64(channels)*p.BackgroundWattsPerChannel + trafficBytesPerSec*p.AccessEnergyPerByte
}
