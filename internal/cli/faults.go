// Package cli shares the fault-injection and failure-reporting plumbing
// of the tesa command-line tools: the -faults/TESA_FAULTS spec, the
// per-stage timeout, and the quarantine summary with its distinct exit
// code.
package cli

import (
	"fmt"
	"io"
	"time"

	"tesa"
)

// ExitQuarantined is the exit code of a run that completed its search
// but quarantined at least one design point — distinct from success (0),
// errors (1), usage (2), and no-solution/disagreement (3), so chaos
// harnesses can tell "survived with losses" from everything else.
const ExitQuarantined = 4

// maxSummaryLines caps the per-point lines of a failure summary; large
// ledgers are truncated with a count.
const maxSummaryLines = 20

// ApplyFaults compiles spec (the -faults flag, defaulting to the
// TESA_FAULTS environment variable) into an injection plan and arms ev
// with it plus the per-stage wall-clock budget. An empty spec and a zero
// timeout are no-ops.
func ApplyFaults(ev *tesa.Evaluator, spec string, stageTimeout time.Duration) error {
	plan, err := tesa.ParseFaults(spec)
	if err != nil {
		return err
	}
	if plan != nil {
		ev.InjectFaults(plan)
	}
	if stageTimeout > 0 {
		ev.SetStageTimeout(stageTimeout)
	}
	return nil
}

// FailureSummary prints the quarantine ledger, capped at
// maxSummaryLines entries. It prints nothing for an empty ledger.
func FailureSummary(w io.Writer, poisoned []tesa.QuarantinedPoint) {
	if len(poisoned) == 0 {
		return
	}
	fmt.Fprintf(w, "\nquarantined %d design point(s), skipped and recorded:\n", len(poisoned))
	for i, q := range poisoned {
		if i == maxSummaryLines {
			fmt.Fprintf(w, "  ... and %d more\n", len(poisoned)-maxSummaryLines)
			break
		}
		fmt.Fprintf(w, "  %s\n", q)
	}
}
