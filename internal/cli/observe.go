package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"tesa"
	"tesa/internal/telemetry"
)

// Observability bundles the -metrics/-trace/-pprof flags every tesa
// command shares, so each main registers and tears them down the same
// way instead of repeating the telemetry.Setup boilerplate.
type Observability struct {
	// Metrics enables the end-of-run telemetry summary.
	Metrics bool
	// Trace is the JSONL event-trace output path ("" = off).
	Trace string
	// Pprof is the net/http/pprof listen address ("" = off).
	Pprof string
}

// ObservabilityFlags registers -metrics, -trace, and -pprof on the
// default flag set and returns the struct they populate after
// flag.Parse.
func ObservabilityFlags() *Observability {
	o := &Observability{}
	flag.BoolVar(&o.Metrics, "metrics", false, "print an end-of-run telemetry summary")
	flag.StringVar(&o.Trace, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return o
}

// Setup builds the telemetry hub from the parsed flags. The returned
// finish prints the -metrics summary to sum (stdout for most commands,
// stderr for CSV emitters) and flushes the trace; call it before every
// exit path — os.Exit skips defers. The hub is nil when no flag asked
// for it, which disables instrumentation at ~zero cost.
func (o *Observability) Setup(sum io.Writer) (*telemetry.Telemetry, func(), error) {
	tel, telDone, err := telemetry.Setup(o.Trace, o.Pprof, o.Metrics)
	if err != nil {
		return nil, nil, err
	}
	finish := func() {
		if o.Metrics {
			fmt.Fprint(sum, tel.Summary())
		}
		if err := telDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	return tel, finish, nil
}

// MemoFlags bundles the cross-point memoization and parallel-annealing
// flags of the search commands: -memo (share one content-addressed
// store across every evaluator of the run), -memo-dir (persist it
// across invocations), and -starts-parallel (run the annealing chains
// through a worker pool with deterministic parallel start sampling).
type MemoFlags struct {
	// Enable turns sub-evaluation memoization on (-memo). Off by
	// default: without it the pipeline byte-for-byte matches the
	// unmemoized build.
	Enable bool
	// Dir is the on-disk cache directory (-memo-dir, implies -memo).
	Dir string
	// Parallel runs the multi-start annealing chains concurrently
	// (-starts-parallel). Results are identical to the sequential
	// schedule; only wall-clock time changes.
	Parallel bool
}

// MemoFlagsRegister registers -memo, -memo-dir, and -starts-parallel on
// the default flag set and returns the struct they populate after
// flag.Parse.
func MemoFlagsRegister() *MemoFlags {
	m := &MemoFlags{}
	flag.BoolVar(&m.Enable, "memo", false, "memoize pipeline stages in a store shared across the whole run")
	flag.StringVar(&m.Dir, "memo-dir", "", "persist the memo store in this directory across invocations (implies -memo)")
	flag.BoolVar(&m.Parallel, "starts-parallel", false, "run the annealing chains through a worker pool (identical results, less wall-clock)")
	return m
}

// Store materializes the flags: nil when memoization is off, otherwise
// a fresh shared store, warm-started from -memo-dir when one was given.
// The returned closer flushes the on-disk cache (a no-op without
// -memo-dir); call it before every exit path.
func (m *MemoFlags) Store() (*tesa.MemoStore, func() error, error) {
	if m.Dir != "" {
		m.Enable = true
	}
	if !m.Enable {
		return nil, func() error { return nil }, nil
	}
	s := tesa.NewMemoStore()
	if m.Dir == "" {
		return s, func() error { return nil }, nil
	}
	closer, err := tesa.LoadMemoDir(s, m.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("-memo-dir: %w", err)
	}
	return s, closer, nil
}

// StartWorkers is the OptimizeOptions.Parallel value the flags ask for:
// 0 (the legacy chain schedule) unless -starts-parallel, then the
// machine's core count — the annealer clamps it to the chain count.
func (m *MemoFlags) StartWorkers() int {
	if !m.Parallel {
		return 0
	}
	return runtime.NumCPU()
}
