package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"tesa"
	"tesa/internal/telemetry"
)

// Observability bundles the observability flags every tesa command
// shares, so each main registers and tears them down the same way
// instead of repeating the telemetry wiring.
type Observability struct {
	// Metrics enables the end-of-run telemetry summary.
	Metrics bool
	// Trace is the JSONL event-trace output path ("" = off).
	Trace string
	// Pprof is the standalone net/http/pprof listen address ("" = off).
	Pprof string
	// MetricsAddr is the live exposition address serving /metrics,
	// /debug/vars, /progress, and /debug/pprof ("" = off).
	MetricsAddr string
	// ManifestPath is the run-manifest JSONL output path ("" = the
	// manifest still exists and rides the trace stream and /debug/vars,
	// but gets no file of its own).
	ManifestPath string
}

// ObservabilityFlags registers -metrics, -trace, -pprof, -metrics-addr,
// and -manifest on the default flag set and returns the struct they
// populate after flag.Parse.
func ObservabilityFlags() *Observability {
	o := &Observability{}
	flag.BoolVar(&o.Metrics, "metrics", false, "print an end-of-run telemetry summary")
	flag.StringVar(&o.Trace, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&o.MetricsAddr, "metrics-addr", "",
		"serve live /metrics (Prometheus), /debug/vars, /progress and /debug/pprof on this address (e.g. localhost:9090)")
	flag.StringVar(&o.ManifestPath, "manifest", "", "write the run manifest (start and end records) as JSONL to this file")
	return o
}

// Session is one CLI run's observability state: the telemetry hub, the
// live exposition server, and the run manifest, created together by
// Observability.Setup and torn down together by Finish. All methods are
// nil-safe, and a Session whose flags asked for nothing costs nothing.
type Session struct {
	// Tel is the telemetry hub (nil when no flag asked for telemetry —
	// the disabled fast path the evaluators rely on).
	Tel *telemetry.Telemetry
	// Server is the live exposition server (nil without -metrics-addr).
	Server *telemetry.Server
	// Manifest is the run's identity card. Commands Set run-defining
	// facts on it (space fingerprint, seeds, fault spec) as they learn
	// them; Finish finalizes and emits it.
	Manifest *telemetry.Manifest

	o            *Observability
	sum          io.Writer
	telDone      func() error
	manifestSink *telemetry.FileSink
	finished     bool
}

// Setup builds the run's observability session from the parsed flags:
// the telemetry hub and exposition server (per the flags), plus a run
// manifest whose phase-"start" record is written immediately — to the
// -manifest file, the -trace stream, and /debug/vars, whichever exist.
// command names the binary for the manifest; sum is where Finish prints
// the -metrics summary (stdout for most commands, stderr for CSV
// emitters). Call Finish before every exit path — os.Exit skips defers.
func (o *Observability) Setup(command string, sum io.Writer) (*Session, error) {
	tel, srv, telDone, err := telemetry.Setup(o.Trace, o.Pprof, o.MetricsAddr, o.Metrics)
	if err != nil {
		return nil, err
	}
	s := &Session{Tel: tel, Server: srv, o: o, sum: sum, telDone: telDone}
	s.Manifest = telemetry.NewManifest(command, os.Args[1:])
	flags := map[string]string{}
	flag.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	if len(flags) > 0 {
		s.Manifest.Set("flags", flags)
	}
	s.Manifest.Set("model_version", tesa.ModelVersion)
	s.Manifest.Set("go_version", runtime.Version())
	s.Manifest.Set("gomaxprocs", runtime.GOMAXPROCS(0))
	if o.ManifestPath != "" {
		fs, err := telemetry.NewFileSink(o.ManifestPath)
		if err != nil {
			_ = telDone()
			return nil, fmt.Errorf("-manifest: %w", err)
		}
		s.manifestSink = fs
	}
	if err := s.Manifest.EmitStart(s.manifestSink); err != nil {
		fmt.Fprintf(os.Stderr, "manifest: %v\n", err)
	}
	if tel.Tracing() {
		tel.Emit(telemetry.ManifestEvent, s.Manifest.Snapshot())
	}
	srv.PublishManifest(s.Manifest.Snapshot())
	return s, nil
}

// Progress wraps a command's progress callback so every update is also
// published to the exposition server's /progress endpoint. Without a
// server the inner callback is returned unchanged (possibly nil, which
// keeps the engines' zero-cost disabled path).
func (s *Session) Progress(inner tesa.ProgressFunc) tesa.ProgressFunc {
	if s == nil || s.Server == nil {
		return inner
	}
	srv := s.Server
	return func(p tesa.Progress) {
		srv.PublishProgress(progressFields(p))
		if inner != nil {
			inner(p)
		}
	}
}

// progressFields flattens a Progress update into the compact, always-
// finite map served at /progress. The incumbent is reduced to its
// design point and objective — the full Evaluation can carry NaN fields
// (PeakTempC with thermal disabled) that must never reach JSON.
func progressFields(p tesa.Progress) map[string]any {
	f := map[string]any{
		"phase":       p.Phase,
		"done":        p.Done,
		"total":       p.Total,
		"quarantined": p.Quarantined,
		"improved":    p.Improved,
		"elapsed_sec": p.Elapsed.Seconds(),
	}
	if p.Incumbent != nil {
		f["best_dim"] = p.Incumbent.Point.ArrayDim
		f["best_ics"] = p.Incumbent.Point.ICSUM
		if obj := p.Incumbent.Objective; !math.IsNaN(obj) && !math.IsInf(obj, 0) {
			f["best_obj"] = obj
		}
	}
	return f
}

// Finish finalizes the run: the manifest's phase-"end" record — status,
// wall/CPU time, and the final metrics snapshot with its quarantine and
// fidelity tallies — goes to the -manifest file, the -trace stream, and
// /debug/vars; the -metrics summary prints; the trace flushes and the
// server shuts down. Idempotent, so commands with multiple exit paths
// can call it from each.
func (s *Session) Finish(status string) {
	if s == nil || s.finished {
		return
	}
	s.finished = true
	rec := s.Manifest.Finalize(s.Tel.Registry(), status)
	s.Server.PublishManifest(rec)
	if s.Tel.Tracing() {
		s.Tel.Emit(telemetry.ManifestEvent, rec)
	}
	if s.manifestSink != nil {
		s.manifestSink.Emit(telemetry.ManifestEvent, rec)
		if err := s.manifestSink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "manifest: %v\n", err)
		}
	}
	if s.o.Metrics {
		fmt.Fprint(s.sum, s.Tel.Summary())
	}
	if err := s.telDone(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// MemoFlags bundles the cross-point memoization and parallel-annealing
// flags of the search commands: -memo (share one content-addressed
// store across every evaluator of the run), -memo-dir (persist it
// across invocations), and -starts-parallel (run the annealing chains
// through a worker pool with deterministic parallel start sampling).
type MemoFlags struct {
	// Enable turns sub-evaluation memoization on (-memo). Off by
	// default: without it the pipeline byte-for-byte matches the
	// unmemoized build.
	Enable bool
	// Dir is the on-disk cache directory (-memo-dir, implies -memo).
	Dir string
	// Parallel runs the multi-start annealing chains concurrently
	// (-starts-parallel). Results are identical to the sequential
	// schedule; only wall-clock time changes.
	Parallel bool
}

// MemoFlagsRegister registers -memo, -memo-dir, and -starts-parallel on
// the default flag set and returns the struct they populate after
// flag.Parse.
func MemoFlagsRegister() *MemoFlags {
	m := &MemoFlags{}
	flag.BoolVar(&m.Enable, "memo", false, "memoize pipeline stages in a store shared across the whole run")
	flag.StringVar(&m.Dir, "memo-dir", "", "persist the memo store in this directory across invocations (implies -memo)")
	flag.BoolVar(&m.Parallel, "starts-parallel", false, "run the annealing chains through a worker pool (identical results, less wall-clock)")
	return m
}

// Store materializes the flags: nil when memoization is off, otherwise
// a fresh shared store, warm-started from -memo-dir when one was given.
// The returned closer flushes the on-disk cache (a no-op without
// -memo-dir); call it before every exit path.
func (m *MemoFlags) Store() (*tesa.MemoStore, func() error, error) {
	if m.Dir != "" {
		m.Enable = true
	}
	if !m.Enable {
		return nil, func() error { return nil }, nil
	}
	s := tesa.NewMemoStore()
	if m.Dir == "" {
		return s, func() error { return nil }, nil
	}
	closer, err := tesa.LoadMemoDir(s, m.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("-memo-dir: %w", err)
	}
	return s, closer, nil
}

// StartWorkers is the OptimizeOptions.Parallel value the flags ask for:
// 0 (the legacy chain schedule) unless -starts-parallel, then the
// machine's core count — the annealer clamps it to the chain count.
func (m *MemoFlags) StartWorkers() int {
	if !m.Parallel {
		return 0
	}
	return runtime.NumCPU()
}
