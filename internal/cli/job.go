package cli

import (
	"flag"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"tesa/internal/jobspec"
)

// JobFlag registers -job on the default flag set: a path to a versioned
// jobspec document that becomes the command's single source of
// configuration. Returns the string it populates after flag.Parse.
func JobFlag() *string {
	return flag.String("job", "",
		"run this jobspec JSON file (tesa.jobspec/v1); conflicts with the per-setting config flags")
}

// FlagWasSet reports whether the named flag was explicitly set on the
// command line (as opposed to holding its default).
func FlagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ResolveJob materializes the -job spec at path, or returns (nil, nil)
// when no -job was given. The spec must be of wantKind (the command's
// engine), and none of the conflicting config flags may be set
// alongside it — a spec is the whole configuration, so a stray -grid
// that would be silently ignored is an error instead. Relative
// workload_file paths resolve against the spec's own directory.
func ResolveJob(path, wantKind string, conflicting ...string) (*jobspec.Resolved, error) {
	if path == "" {
		return nil, nil
	}
	bad := map[string]bool{}
	for _, name := range conflicting {
		bad[name] = true
	}
	var clash []string
	flag.Visit(func(f *flag.Flag) {
		if bad[f.Name] {
			clash = append(clash, "-"+f.Name)
		}
	})
	if len(clash) > 0 {
		sort.Strings(clash)
		return nil, fmt.Errorf("config flags %v conflict with -job (the spec is the configuration; edit it instead)", clash)
	}
	spec, err := jobspec.Load(path)
	if err != nil {
		return nil, err
	}
	if spec.Kind != wantKind {
		return nil, fmt.Errorf("-job: %s is a %q job; this command runs %q jobs", path, spec.Kind, wantKind)
	}
	return spec.Resolve(filepath.Dir(path))
}

// JobDeadline merges the spec's deadline with the -deadline flag: an
// explicitly-set flag wins, otherwise the spec's deadline_sec applies.
func JobDeadline(job *jobspec.Resolved, flagValue time.Duration) time.Duration {
	if FlagWasSet("deadline") || job == nil {
		return flagValue
	}
	return job.Deadline
}
