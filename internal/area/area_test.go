package area

import (
	"math"
	"testing"
	"testing/quick"

	"tesa/internal/sram"
)

func est(t *testing.T, kb int64) sram.Estimate {
	t.Helper()
	e, err := sram.Estimate22nm(kb * 1024)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildRejectsBadInputs(t *testing.T) {
	e := est(t, 64)
	if _, err := Build(0, e, false, 0); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := Build(100, sram.Estimate{}, false, 0); err == nil {
		t.Error("uninitialized SRAM estimate accepted")
	}
	if _, err := Build(100, e, true, 0); err == nil {
		t.Error("3-D chiplet with zero peak bandwidth accepted")
	}
}

func Test2DFootprintIsSum(t *testing.T) {
	e := est(t, 1024)
	c, err := Build(200*200, e, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.FootprintMM2-(c.ArrayMM2+c.SRAMMM2)) > 1e-12 {
		t.Errorf("2-D footprint %g != array+SRAM %g", c.FootprintMM2, c.ArrayMM2+c.SRAMMM2)
	}
	if c.TSVCount != 0 || c.TSVMM2 != 0 {
		t.Error("2-D chiplet has TSVs")
	}
	// 200x200 at 74 um^2 = 2.96 mm^2 exactly.
	if math.Abs(c.ArrayMM2-2.96) > 1e-9 {
		t.Errorf("200x200 array area = %g mm^2, want 2.96", c.ArrayMM2)
	}
	// Rectangular: height = array side, width longer.
	if math.Abs(c.HeightMM*c.HeightMM-c.ArrayMM2) > 1e-9 {
		t.Errorf("2-D height %g not the array side", c.HeightMM)
	}
	if c.WidthMM <= c.HeightMM {
		t.Errorf("2-D chiplet width %g not beyond array height %g", c.WidthMM, c.HeightMM)
	}
}

func Test3DFootprintIsMaxTier(t *testing.T) {
	e := est(t, 1024)
	c, err := Build(196*196, e, true, 196+2*196)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint = max tier plus the per-side assembly margin.
	wantSide := math.Sqrt(math.Max(c.ArrayMM2, c.SRAMMM2+c.TSVMM2)) + 0.3
	if math.Abs(c.FootprintMM2-wantSide*wantSide) > 1e-9 {
		t.Errorf("3-D footprint %g != (max-tier side + margin)^2 %g", c.FootprintMM2, wantSide*wantSide)
	}
	if c.ActiveInsetMM <= 0 {
		t.Error("3-D chiplet missing active inset")
	}
	if c.TSVCount <= 0 || c.TSVCopperFraction <= 0 || c.TSVCopperFraction >= 1 {
		t.Errorf("TSV accounting wrong: count=%d copper=%g", c.TSVCount, c.TSVCopperFraction)
	}
}

// Test3DSavesFootprint: the core 3-D advantage the paper exploits — a 3-D
// chiplet's interposer footprint is well below the 2-D equivalent,
// letting TESA place more chiplets (and win OPS).
func Test3DSavesFootprint(t *testing.T) {
	e := est(t, 1024)
	peak := 200 + 2*200.0
	c2, err := Build(200*200, e, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := Build(200*200, e, true, peak)
	if err != nil {
		t.Fatal(err)
	}
	// The stacked footprint (max tier plus the assembly margin) stays
	// clearly below the planar footprint.
	if c3.FootprintMM2 >= 0.85*c2.FootprintMM2 {
		t.Errorf("3-D footprint %g not well below 2-D %g", c3.FootprintMM2, c2.FootprintMM2)
	}
	// But total silicon is at least as large (extra TSV area).
	if c3.SiliconMM2() < c2.SiliconMM2() {
		t.Errorf("3-D silicon %g below 2-D %g", c3.SiliconMM2(), c2.SiliconMM2())
	}
}

func TestTSVCountScalesWithBandwidth(t *testing.T) {
	e := est(t, 256)
	f := func(bw uint8) bool {
		b := float64(bw%200) + 1
		c1, err1 := Build(64*64, e, true, b)
		c2, err2 := Build(64*64, e, true, 2*b)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2.TSVCount >= 2*c1.TSVCount-2 && c2.TSVCount <= 2*c1.TSVCount+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimsMatchFootprint(t *testing.T) {
	e := est(t, 512)
	c2, err := Build(128*128, e, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2.WidthMM*c2.HeightMM-c2.FootprintMM2) > 1e-9 {
		t.Errorf("2-D W*H = %g != footprint %g", c2.WidthMM*c2.HeightMM, c2.FootprintMM2)
	}
	c3, err := Build(128*128, e, true, 128*3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c3.WidthMM-c3.HeightMM) > 1e-12 {
		t.Errorf("3-D chiplet not square: %g x %g", c3.WidthMM, c3.HeightMM)
	}
	if math.Abs(c3.WidthMM*c3.HeightMM-c3.FootprintMM2) > 1e-9 {
		t.Errorf("3-D W*H = %g != footprint %g", c3.WidthMM*c3.HeightMM, c3.FootprintMM2)
	}
}

// TestInterposerCapacity: the paper's winning configurations must
// physically fit the 8x8 mm interposer: two 200x200/3x1MB 2-D chiplets
// and four (2x2) 196x196/3x1MB 3-D chiplets.
func TestInterposerCapacity(t *testing.T) {
	e := est(t, 1024)
	c2, err := Build(200*200, e, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if 2*c2.HeightMM+1.0 > 8.0 { // two chiplets stacked vertically plus 1 mm max ICS
		t.Errorf("two 2-D chiplets (height %.2f mm) overflow the 8 mm interposer", c2.HeightMM)
	}
	c3, err := Build(196*196, e, true, 196*3)
	if err != nil {
		t.Fatal(err)
	}
	if 2*c3.WidthMM+1.0 > 8.0 {
		t.Errorf("2x2 3-D chiplets (side %.2f mm) overflow the 8 mm interposer", c3.WidthMM)
	}
}
