// Package area implements TESA's chiplet area model for 2-D and 3-D
// (two-tier, SRAM-under-array) chiplets.
//
// Following the paper: a 22 nm MAC occupies a representative 100 um^2
// [10]; SRAM areas come from the CACTI-equivalent model; in 3-D the SRAM
// tier carries a TSV area overhead sized by the chiplet's peak SRAM
// bandwidth, with aggressive 2 um diameter / 2 um keep-out TSVs [18]; and
// a 3-D chiplet's footprint is the maximum of its two tier areas.
package area

import (
	"fmt"
	"math"

	"tesa/internal/sram"
)

// Technology constants (22 nm, after the paper's citations).
const (
	// MACAreaMM2 is the silicon area of one 8-bit MAC PE [10]. At this
	// pitch a 200x200 array spans 1.72 mm — which makes the paper's 2-D
	// mesh geometry work out: two or three rectangular 200x200-class
	// chiplets stack vertically on the 8 mm interposer (Table V's "2x"
	// and "3x" grids) while a second column never fits.
	MACAreaMM2 = 74e-6
	// tsvPitchUM is the TSV pitch: 2 um diameter plus 2 um keep-out zone
	// on each side [18].
	tsvPitchUM = 6.0
	// tsvAreaMM2 is the silicon area consumed per TSV (pitch^2).
	tsvAreaMM2 = tsvPitchUM * tsvPitchUM * 1e-6
	// tsvCopperAreaMM2 is the copper cross-section of one TSV (pi*r^2,
	// r = 1 um), used by the thermal model to adjust the SRAM tier's
	// vertical conductivity.
	tsvCopperAreaMM2 = math.Pi * 1e-6
	// tsvSignalOverhead accounts for power/ground and redundancy TSVs on
	// top of the signal bundle.
	tsvSignalOverhead = 1.3
	// stackMarginMM is the per-side assembly margin of a 3-D chiplet:
	// the die-to-die bonding alignment ring, seal ring, and TSV keep-out
	// at the die edge add a fixed border to the stacked footprint.
	stackMarginMM = 0.15
)

// Chiplet is the area decomposition of one chiplet.
type Chiplet struct {
	ThreeD bool

	ArrayMM2 float64 // systolic-array tier (or region, in 2-D) area
	SRAMMM2  float64 // three SRAM macros
	TSVMM2   float64 // TSV overhead on the SRAM tier (3-D only)

	// FootprintMM2 is the interposer area the chiplet occupies: the sum
	// of regions in 2-D, the maximum tier in 3-D.
	FootprintMM2 float64
	// WidthMM and HeightMM are the footprint dimensions. A 2-D chiplet is
	// rectangular: the square systolic array sets the height and the
	// three SRAM macros sit beside it, extending the width. A 3-D chiplet
	// is square: the SRAM tier hides under the array tier.
	WidthMM, HeightMM float64
	// TSVCount is the number of TSVs crossing the tier boundary.
	TSVCount int
	// TSVCopperFraction is the fraction of the SRAM tier cross-section
	// that is copper TSV, for the thermal model.
	TSVCopperFraction float64
	// ActiveInsetMM is the border of the footprint that carries no
	// power (the 3-D assembly margin); the thermal model injects power
	// only inside it.
	ActiveInsetMM float64
}

// SiliconMM2 returns the total silicon fabricated for the chiplet (both
// tiers in 3-D) — the quantity the cost model's yield term consumes.
func (c Chiplet) SiliconMM2() float64 {
	if c.ThreeD {
		return c.ArrayMM2 + c.SRAMMM2 + c.TSVMM2
	}
	return c.ArrayMM2 + c.SRAMMM2
}

// ArrayTierMM2 returns the array die area (3-D) or array region (2-D).
func (c Chiplet) ArrayTierMM2() float64 { return c.ArrayMM2 }

// SRAMTierMM2 returns the SRAM die area including TSV overhead (3-D) or
// the SRAM region (2-D).
func (c Chiplet) SRAMTierMM2() float64 { return c.SRAMMM2 + c.TSVMM2 }

// Build computes the area decomposition of a chiplet with numPEs MACs and
// three SRAM macros characterized by est. For 3-D chiplets,
// peakSRAMBytesPerCycle sizes the TSV bundle (one bit per TSV per cycle,
// times the power/ground overhead).
func Build(numPEs int, est sram.Estimate, threeD bool, peakSRAMBytesPerCycle float64) (Chiplet, error) {
	if numPEs <= 0 {
		return Chiplet{}, fmt.Errorf("area: non-positive PE count %d", numPEs)
	}
	if est.Bytes <= 0 {
		return Chiplet{}, fmt.Errorf("area: SRAM estimate not initialized")
	}
	c := Chiplet{
		ThreeD:   threeD,
		ArrayMM2: float64(numPEs) * MACAreaMM2,
		SRAMMM2:  3 * est.AreaMM2,
	}
	if threeD {
		if peakSRAMBytesPerCycle <= 0 {
			return Chiplet{}, fmt.Errorf("area: 3-D chiplet needs positive peak SRAM bandwidth, got %g", peakSRAMBytesPerCycle)
		}
		c.TSVCount = int(math.Ceil(peakSRAMBytesPerCycle * 8 * tsvSignalOverhead))
		c.TSVMM2 = float64(c.TSVCount) * tsvAreaMM2
		sramTier := c.SRAMMM2 + c.TSVMM2
		c.TSVCopperFraction = float64(c.TSVCount) * tsvCopperAreaMM2 / sramTier
		c.WidthMM = math.Sqrt(math.Max(c.ArrayMM2, sramTier)) + 2*stackMarginMM
		c.HeightMM = c.WidthMM
		c.FootprintMM2 = c.WidthMM * c.HeightMM
		c.ActiveInsetMM = stackMarginMM
	} else {
		c.FootprintMM2 = c.ArrayMM2 + c.SRAMMM2
		c.HeightMM = math.Sqrt(c.ArrayMM2)
		c.WidthMM = c.HeightMM + c.SRAMMM2/c.HeightMM
	}
	return c, nil
}
