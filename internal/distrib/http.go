package distrib

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"tesa/internal/core"
)

// The wire protocol, all JSON over HTTP relative to the mount point:
//
//	GET  /spec      the raw jobspec bytes the coordinator was built from
//	GET  /info      the decomposition and protocol parameters
//	GET  /status    a Status snapshot
//	POST /lease     {"worker": w}            -> LeaseResponse
//	POST /heartbeat {"worker": w}            -> HeartbeatResponse
//	POST /report    ReportRequest            -> ReportResponse
//
// Workers never receive design points over the wire: they resolve the
// spec themselves and re-derive the canonical enumeration, with the
// fingerprint in /info guarding against any disagreement.

// InfoResponse describes the sweep a worker is joining.
type InfoResponse struct {
	// Fingerprint is the space fingerprint workers must re-derive from
	// the spec; a mismatch means the two sides would enumerate
	// different points, and the worker must refuse to run.
	Fingerprint string `json:"fingerprint"`
	// Total, ShardSize, and Shards pin the decomposition.
	Total     int `json:"total"`
	ShardSize int `json:"shard_size"`
	Shards    int `json:"shards"`
	// LeaseTTLMS is the heartbeat deadline granted leases run on.
	LeaseTTLMS int `json:"lease_ttl_ms"`
	// RunID identifies the coordinator's run ("" when none).
	RunID string `json:"run_id,omitempty"`
}

// LeaseResponse is the coordinator's answer to a lease request;
// exactly one of the four outcomes is set.
type LeaseResponse struct {
	// Shards are the granted shard indices, with TTLMS the heartbeat
	// deadline in milliseconds.
	Shards []int `json:"shards,omitempty"`
	TTLMS  int   `json:"ttl_ms,omitempty"`
	// WaitMS asks the worker to retry after this many milliseconds:
	// nothing is pending right now, but leased shards may yet be
	// stolen.
	WaitMS int `json:"wait_ms,omitempty"`
	// Done reports sweep completion: the worker can exit.
	Done bool `json:"done,omitempty"`
	// Quarantined carries the refutation reason when the coordinator
	// refuses this worker.
	Quarantined string `json:"quarantined,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// OK is true unless the worker is quarantined.
	OK bool `json:"ok"`
	// Quarantined carries the refutation reason when set.
	Quarantined string `json:"quarantined,omitempty"`
}

// ReportRequest carries one executed shard back to the coordinator:
// the checkpoint record fields plus the quarantined points the shard
// produced.
type ReportRequest struct {
	// Worker names the reporting worker.
	Worker string `json:"worker"`
	// Shard, Feasible, Found, BestDim, BestICS, and BestObj mirror
	// core.ShardCheckpoint.
	Shard    int     `json:"shard"`
	Feasible int     `json:"feasible"`
	Found    bool    `json:"found"`
	BestDim  int     `json:"best_dim,omitempty"`
	BestICS  int     `json:"best_ics,omitempty"`
	BestObj  float64 `json:"best_obj,omitempty"`
	// Poisoned lists the shard's quarantined points.
	Poisoned []ReportPoison `json:"poisoned,omitempty"`
}

// ReportPoison is one quarantined point in a ReportRequest.
type ReportPoison struct {
	// Dim and ICS identify the design point; Stage and Reason say what
	// failed.
	Dim    int    `json:"dim"`
	ICS    int    `json:"ics"`
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// OK is true when the record was merged (or was a known
	// duplicate).
	OK bool `json:"ok"`
	// Stale marks a duplicate of an already-merged identical record —
	// the normal fate of a report for a stolen shard.
	Stale bool `json:"stale,omitempty"`
	// Done reports that the sweep had already completed.
	Done bool `json:"done,omitempty"`
	// Quarantined carries the refutation reason when this report (or a
	// previous one) got the worker quarantined.
	Quarantined string `json:"quarantined,omitempty"`
	// Err describes a malformed report.
	Err string `json:"error,omitempty"`
}

// workerRequest is the body of lease and heartbeat posts.
type workerRequest struct {
	Worker string `json:"worker"`
}

// Handler returns the coordinator's HTTP interface, with routes
// relative to the mount point — mount it under tesa-server's
// /v1/distrib/ (server.Config.Distrib) or serve it standalone.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/spec", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(c.spec)
	})
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, InfoResponse{
			Fingerprint: c.fingerprint,
			Total:       len(c.pts),
			ShardSize:   c.size,
			Shards:      c.nShards,
			LeaseTTLMS:  int(c.cfg.LeaseTTL.Milliseconds()),
			RunID:       c.cfg.RunID,
		})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		var req workerRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Lease(req.Worker))
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req workerRequest
		if !readJSON(w, r, &req) {
			return
		}
		reason := c.Heartbeat(req.Worker)
		writeJSON(w, http.StatusOK, HeartbeatResponse{OK: reason == "", Quarantined: reason})
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if !readJSON(w, r, &req) {
			return
		}
		cp := core.ShardCheckpoint{
			Shard:    req.Shard,
			Feasible: req.Feasible,
			Found:    req.Found,
		}
		if req.Found {
			cp.Best = core.DesignPoint{ArrayDim: req.BestDim, ICSUM: req.BestICS}
			cp.BestObj = req.BestObj
		}
		var poisons []core.QuarantinedPoint
		for _, p := range req.Poisoned {
			poisons = append(poisons, core.QuarantinedPoint{
				Point:  core.DesignPoint{ArrayDim: p.Dim, ICSUM: p.ICS},
				Stage:  p.Stage,
				Reason: p.Reason,
			})
		}
		resp := c.Report(req.Worker, cp, poisons)
		status := http.StatusOK
		if resp.Err != "" {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, resp)
	})
	return mux
}

// readJSON decodes a POST body, answering 405/400 itself on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		http.Error(w, fmt.Sprintf("decode body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON encodes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
