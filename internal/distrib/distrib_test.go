package distrib

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tesa/internal/core"
	"tesa/internal/faults"
	"tesa/internal/jobspec"
	"tesa/internal/telemetry"
)

// sweepSpec is the shared job document: 25 points in 13 two-point
// shards — small enough for a -race test, sharded enough for leases,
// steals, and verification to all exercise.
const sweepSpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "sweep",
  "options": {"grid": 16},
  "space": {"array_dims": [160, 180, 200, 220, 240], "ics_ums": [0, 250, 500, 750, 1000]},
  "sweep": {"shard_size": 2}
}`

// baselineSweep runs the spec as a clean single-process sweep — the
// ground truth every distributed run must reproduce bit-identically.
func baselineSweep(t *testing.T) *core.ExhaustiveResult {
	t.Helper()
	spec, err := jobspec.Parse([]byte(sweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := jobspec.NewEvaluator(r, jobspec.Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.ExhaustiveContext(context.Background(), r.Space, &core.SweepOptions{ShardSize: r.ShardSize})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("baseline sweep found nothing feasible; the test space is miscalibrated")
	}
	return res
}

// TestDistributedSweepFaultTolerance is the protocol's proof: a sweep
// served to four workers — one honest, one that crashes, one that
// stalls past its lease TTL on every shard, and one that lies on every
// report — must produce a bit-identical winner to a clean
// single-process run, quarantine the liar, steal from the stragglers,
// and leave a ledger the single-process resume path accepts as a
// completed sweep.
func TestDistributedSweepFaultTolerance(t *testing.T) {
	baseline := baselineSweep(t)

	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	sink, err := telemetry.NewFileSink(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	coord, err := NewCoordinator(Config{
		Spec:        []byte(sweepSpec),
		LeaseTTL:    250 * time.Millisecond,
		LeaseShards: 2,
		VerifyFrac:  0.25,
		VerifySeed:  7,
		Ledger:      sink,
		RunID:       "distribtest00001",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	plan := func(spec string) *faults.Plan {
		p, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	workers := []struct {
		name   string
		faults *faults.Plan
	}{
		{"honest", nil},
		{"crasher", plan("crash@shard")},
		{"staller", plan("stall@shard:delay=600ms")},
		{"liar", plan("lie@shard")},
	}
	type outcome struct {
		stats *WorkerStats
		err   error
	}
	results := make(map[string]outcome, len(workers))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, w := range workers {
		wg.Add(1)
		go func(name string, fp *faults.Plan) {
			defer wg.Done()
			stats, err := RunWorker(ctx, WorkerConfig{
				Coord:  srv.URL,
				Name:   name,
				Faults: fp,
				Logf:   t.Logf,
			})
			mu.Lock()
			results[name] = outcome{stats, err}
			mu.Unlock()
		}(w.name, w.faults)
	}

	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()

	// The bit-identical winner: same design point, same objective down
	// to the float bits, despite a crash, a chronic straggler, and an
	// adversary in the pool.
	if res.Best == nil {
		t.Fatal("distributed sweep found nothing feasible")
	}
	if res.Best.Point != baseline.Best.Point {
		t.Errorf("winner %+v != single-process winner %+v", res.Best.Point, baseline.Best.Point)
	}
	if math.Float64bits(res.Best.Objective) != math.Float64bits(baseline.Best.Objective) {
		t.Errorf("objective %x != single-process %x", res.Best.Objective, baseline.Best.Objective)
	}
	if res.Feasible != baseline.Feasible || res.Total != baseline.Total {
		t.Errorf("feasible/total %d/%d != baseline %d/%d", res.Feasible, res.Total, baseline.Feasible, baseline.Total)
	}

	// The liar was refuted by re-evaluation and quarantined; the
	// refusal rolled its outstanding leases back into the queue.
	if res.Mismatches < 1 {
		t.Errorf("mismatches = %d, want >= 1 (the liar's first report)", res.Mismatches)
	}
	if len(res.QuarantinedWorkers) != 1 || res.QuarantinedWorkers[0] != "liar" {
		t.Errorf("quarantined workers = %v, want [liar]", res.QuarantinedWorkers)
	}
	if res.Verified < 1 {
		t.Errorf("verified = %d, want >= 1", res.Verified)
	}
	// The crash and the stalls both forfeit leases; at least one shard
	// must have been stolen and completed by someone else.
	if res.Steals < 1 {
		t.Errorf("steals = %d, want >= 1", res.Steals)
	}

	mu.Lock()
	defer mu.Unlock()
	if o := results["crasher"]; !errors.Is(o.err, ErrWorkerCrashed) || o.stats.Crashes != 1 {
		t.Errorf("crasher outcome = %+v, %v; want one injected crash", o.stats, o.err)
	}
	if o := results["liar"]; !errors.Is(o.err, ErrWorkerQuarantined) || o.stats.Lies < 1 {
		t.Errorf("liar outcome = %+v, %v; want quarantine after lying", o.stats, o.err)
	}
	if o := results["honest"]; o.err != nil || o.stats.Shards == 0 {
		t.Errorf("honest outcome = %+v, %v; want clean completion with work done", o.stats, o.err)
	}
	if o := results["staller"]; o.err != nil || o.stats.Stalls < 1 {
		t.Errorf("staller outcome = %+v, %v; want clean completion with stalls fired", o.stats, o.err)
	}

	// The merged ledger is byte-compatible with single-process
	// checkpoints: LoadCheckpoint accepts it as a complete sweep of the
	// same decomposition, and the resume path reproduces the winner
	// without evaluating a single point.
	f, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := core.LoadCheckpoint(f)
	if err != nil {
		t.Fatalf("ledger rejected by LoadCheckpoint: %v", err)
	}
	if st.Completed() != res.Shards {
		t.Fatalf("ledger has %d shards, want %d", st.Completed(), res.Shards)
	}
	if st.RunID != "distribtest00001" {
		t.Errorf("ledger run id = %q", st.RunID)
	}
	spec, _ := jobspec.Parse([]byte(sweepSpec))
	r, _ := spec.Resolve("")
	ev, err := jobspec.NewEvaluator(r, jobspec.Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ev.ExhaustiveContext(ctx, r.Space, &core.SweepOptions{ShardSize: r.ShardSize, ResumeFrom: st})
	if err != nil {
		t.Fatalf("resume from merged ledger: %v", err)
	}
	if resumed.Resumed != baseline.Total || resumed.Evaluated != 0 {
		t.Errorf("resume re-evaluated %d points (resumed %d), want a full credit", resumed.Evaluated, resumed.Resumed)
	}
	if resumed.Best == nil || resumed.Best.Point != baseline.Best.Point ||
		math.Float64bits(resumed.Best.Objective) != math.Float64bits(baseline.Best.Objective) {
		t.Errorf("resumed winner differs from baseline")
	}
}

// TestCoordinatorLeaseFlow drives the lease protocol directly, without
// HTTP or fault injection: grants pop the queue front, an exhausted
// queue answers wait, duplicate reports are stale no-ops, expired
// leases are stolen, and completion latches.
func TestCoordinatorLeaseFlow(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Spec:       []byte(sweepSpec),
		LeaseTTL:   80 * time.Millisecond,
		VerifyFrac: -1, // spot checks off; this test reports honestly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if coord.Shards() != 13 {
		t.Fatalf("shards = %d, want 13", coord.Shards())
	}

	g1 := coord.Lease("w1")
	if len(g1.Shards) != DefaultLeaseShards || g1.Shards[0] != 0 {
		t.Fatalf("first grant = %+v", g1)
	}
	// Leases are per-shard and exclusive: a second worker gets the next
	// range.
	g2 := coord.Lease("w2")
	if len(g2.Shards) == 0 || g2.Shards[0] != g1.Shards[len(g1.Shards)-1]+1 {
		t.Fatalf("second grant = %+v does not follow %+v", g2, g1)
	}

	// Expired leases are stolen: without heartbeats the janitor
	// re-queues w1's and w2's shards at the front of the queue, ahead
	// of never-granted work.
	granted := make(map[int]bool)
	for _, s := range append(append([]int{}, g1.Shards...), g2.Shards...) {
		granted[s] = true
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := coord.Status()
		if st.Steals >= len(granted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leases never expired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	g3 := coord.Lease("w3")
	if len(g3.Shards) == 0 {
		t.Fatalf("no re-grant after steal: %+v", g3)
	}
	for _, s := range g3.Shards {
		if !granted[s] {
			t.Fatalf("re-grant %v includes never-stolen shard %d", g3.Shards, s)
		}
	}

	// Honest reports merge; an identical duplicate (the straggler
	// finally reporting its stolen shard) is acknowledged as stale.
	spec, _ := jobspec.Parse([]byte(sweepSpec))
	r, _ := spec.Resolve("")
	ev, err := jobspec.NewEvaluator(r, jobspec.Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Space.Enumerate()
	cp, poisons, err := ev.SweepShard(context.Background(), pts, g3.Shards[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := coord.Report("w3", cp, poisons); !resp.OK || resp.Stale {
		t.Fatalf("first report = %+v", resp)
	}
	if resp := coord.Report("w1", cp, poisons); !resp.OK || !resp.Stale {
		t.Fatalf("duplicate report = %+v, want stale ack", resp)
	}
	if resp := coord.Report("w1", core.ShardCheckpoint{Shard: 99}, nil); resp.Err == "" {
		t.Fatalf("out-of-range report = %+v, want error", resp)
	}

	// Complete the sweep directly and observe the latch.
	for idx := 0; idx < coord.Shards(); idx++ {
		cp, poisons, err := ev.SweepShard(context.Background(), pts, idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		coord.Report("w3", cp, poisons)
	}
	if g := coord.Lease("w3"); !g.Done {
		t.Fatalf("post-completion lease = %+v, want done", g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Steals < len(g1.Shards) {
		t.Fatalf("result = %+v", res)
	}
}

// TestCoordinatorResumeValidation: a ledger from a different
// decomposition is refused with the typed shard-size error.
func TestCoordinatorResumeValidation(t *testing.T) {
	_, err := NewCoordinator(Config{
		Spec: []byte(sweepSpec),
		Resume: &core.CheckpointState{
			Fingerprint: mustFingerprint(t),
			Total:       25,
			ShardSize:   5,
			Shards:      5,
			RunID:       "beefbeefbeefbeef",
			Done:        map[int]core.ShardCheckpoint{},
		},
	})
	var sse *core.ShardSizeError
	if !errors.As(err, &sse) {
		t.Fatalf("err = %v, want *core.ShardSizeError", err)
	}
	if sse.Expected != 2 || sse.Found != 5 || sse.RunID != "beefbeefbeefbeef" {
		t.Errorf("ShardSizeError = %+v", sse)
	}
	if !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Errorf("typed error left the ErrCheckpointCorrupt family: %v", err)
	}
}

// mustFingerprint resolves the shared spec's space fingerprint.
func mustFingerprint(t *testing.T) string {
	t.Helper()
	spec, err := jobspec.Parse([]byte(sweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	return r.Space.Fingerprint()
}
