package distrib

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"tesa/internal/core"
	"tesa/internal/jobspec"
)

// Coordinator owns one distributed sweep: the shard queue, the lease
// table, the merged ledger, and the trust-but-verify policy. Create one
// with NewCoordinator, expose Handler over HTTP, and Wait for the
// merged result. All methods are safe for concurrent use.
type Coordinator struct {
	cfg         Config
	spec        []byte
	fingerprint string
	pts         []core.DesignPoint
	size        int
	nShards     int
	eval        *core.Evaluator
	runCtx      context.Context
	runCancel   context.CancelFunc

	mu      sync.Mutex
	pending []int         // shard queue; grants pop the front, steals push the front
	leases  map[int]lease // shard -> current lease
	done    map[int]core.ShardCheckpoint
	// verified marks shards whose record is the coordinator's own
	// computation (verification, adjudication, or a trusted resume);
	// only verified records may move the incumbent, and only
	// unverified ones are rolled back when their reporter is
	// quarantined.
	verified    map[int]bool
	reporter    map[int]string
	verifying   map[int]bool // shards with a re-execution in flight
	poisoned    map[core.DesignPoint]core.QuarantinedPoint
	workers     map[string]time.Time // worker -> last seen
	quarantined map[string]string    // worker -> refutation reason

	found   bool
	bestPt  core.DesignPoint
	bestObj float64

	donePoints int
	steals     int
	verifies   int
	mismatches int

	began    time.Time
	complete bool
	doneCh   chan struct{}
	closeCh  chan struct{}
	closed   sync.Once
	now      func() time.Time
}

// lease records one granted shard: who holds it and when it expires
// absent a heartbeat.
type lease struct {
	worker  string
	expires time.Time
}

// NewCoordinator parses and resolves the sweep spec, prefills any
// resumed state, writes the ledger header, and starts the lease
// janitor. Close the coordinator when done.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	spec, err := jobspec.Parse(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	if spec.Kind != jobspec.KindSweep {
		return nil, fmt.Errorf("distrib: coordinator needs a sweep spec, got kind %q", spec.Kind)
	}
	r, err := spec.Resolve(cfg.BaseDir)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	eval, err := jobspec.NewEvaluator(r, jobspec.Runtime{Store: cfg.Store, Tel: cfg.Tel})
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.LeaseShards <= 0 {
		cfg.LeaseShards = DefaultLeaseShards
	}
	if cfg.VerifyFrac == 0 {
		cfg.VerifyFrac = DefaultVerifyFrac
	}
	pts := r.Space.Enumerate()
	size := r.ShardSize
	if size <= 0 && cfg.Resume != nil {
		size = cfg.Resume.ShardSize
	}
	if size <= 0 {
		size = core.AutoShardSize(len(pts), runtime.GOMAXPROCS(0))
	}
	nShards := (len(pts) + size - 1) / size
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:         cfg,
		spec:        cfg.Spec,
		fingerprint: r.Space.Fingerprint(),
		pts:         pts,
		size:        size,
		nShards:     nShards,
		eval:        eval,
		runCtx:      ctx,
		runCancel:   cancel,
		leases:      make(map[int]lease),
		done:        make(map[int]core.ShardCheckpoint),
		verified:    make(map[int]bool),
		reporter:    make(map[int]string),
		verifying:   make(map[int]bool),
		poisoned:    make(map[core.DesignPoint]core.QuarantinedPoint),
		workers:     make(map[string]time.Time),
		quarantined: make(map[string]string),
		began:       time.Now(),
		doneCh:      make(chan struct{}),
		closeCh:     make(chan struct{}),
		now:         time.Now,
	}
	if st := cfg.Resume; st != nil {
		if st.Fingerprint != c.fingerprint {
			cancel()
			return nil, fmt.Errorf("distrib: %w: ledger space %s does not match spec space %s",
				core.ErrCheckpointCorrupt, st.Fingerprint, c.fingerprint)
		}
		if st.ShardSize != size {
			cancel()
			return nil, fmt.Errorf("distrib: resume: %w",
				&core.ShardSizeError{Expected: size, Found: st.ShardSize, RunID: st.RunID})
		}
		if st.Total != len(pts) || st.Shards != nShards {
			cancel()
			return nil, fmt.Errorf("distrib: %w: ledger decomposition %d/%d vs spec %d/%d",
				core.ErrCheckpointCorrupt, st.Total, st.Shards, len(pts), nShards)
		}
		for idx, cp := range st.Done {
			c.done[idx] = cp
			c.verified[idx] = true // the operator's ledger is trusted
			c.donePoints += shardSpan(idx, size, len(pts))
			if cp.Found && (!c.found || core.BetterPoint(cp.BestObj, cp.Best, c.bestObj, c.bestPt)) {
				c.found, c.bestPt, c.bestObj = true, cp.Best, cp.BestObj
			}
		}
		for p, q := range st.Poisoned {
			c.poisoned[p] = q
		}
	}
	for idx := 0; idx < nShards; idx++ {
		if _, ok := c.done[idx]; !ok {
			c.pending = append(c.pending, idx)
		}
	}
	if len(c.done) == nShards {
		c.complete = true
		close(c.doneCh)
	}
	if cfg.Ledger != nil {
		if err := core.WriteCheckpointHeader(cfg.Ledger, c.fingerprint, len(pts), size, nShards, cfg.RunID); err != nil {
			cancel()
			return nil, fmt.Errorf("distrib: ledger: %w", err)
		}
	}
	go c.janitor()
	return c, nil
}

// Fingerprint returns the swept space's fingerprint.
func (c *Coordinator) Fingerprint() string { return c.fingerprint }

// Shards returns the decomposition's shard count.
func (c *Coordinator) Shards() int { return c.nShards }

// Close stops the janitor and cancels in-flight verification; pending
// Wait calls return ErrCoordinatorClosed unless the sweep had already
// completed.
func (c *Coordinator) Close() {
	c.closed.Do(func() {
		close(c.closeCh)
		c.runCancel()
	})
}

// logf forwards to the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// janitor expires leases: a shard whose worker has not heartbeat within
// the TTL goes back to the front of the pending queue for the next
// worker — work stealing for stragglers.
func (c *Coordinator) janitor() {
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.closeCh:
			return
		case <-t.C:
			c.expireLeases()
		}
	}
}

// expireLeases sweeps the lease table once.
func (c *Coordinator) expireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var stolen []int
	for shard, l := range c.leases {
		if now.After(l.expires) {
			delete(c.leases, shard)
			if _, merged := c.done[shard]; !merged && !c.verifying[shard] {
				stolen = append(stolen, shard)
				c.logf("distrib: lease on shard %d expired (worker %s); re-queued", shard, l.worker)
			}
		}
	}
	if len(stolen) > 0 {
		sort.Ints(stolen)
		c.pending = append(stolen, c.pending...)
		c.steals += len(stolen)
	}
}

// touchLocked records a worker sighting. Callers hold mu.
func (c *Coordinator) touchLocked(worker string) {
	if worker != "" {
		c.workers[worker] = c.now()
	}
}

// Lease grants up to LeaseShards pending shards to the worker. The
// response is exactly one of: Quarantined (the worker is refused),
// Done (the sweep is complete), WaitMS (nothing pending right now —
// retry later), or Shards+TTLMS (the grant).
func (c *Coordinator) Lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	if reason, bad := c.quarantined[worker]; bad {
		return LeaseResponse{Quarantined: reason}
	}
	if c.complete {
		return LeaseResponse{Done: true}
	}
	if len(c.pending) == 0 {
		wait := c.cfg.LeaseTTL / 2
		if wait < 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		return LeaseResponse{WaitMS: int(wait / time.Millisecond)}
	}
	n := c.cfg.LeaseShards
	if n > len(c.pending) {
		n = len(c.pending)
	}
	grant := make([]int, n)
	copy(grant, c.pending[:n])
	c.pending = c.pending[n:]
	exp := c.now().Add(c.cfg.LeaseTTL)
	for _, s := range grant {
		c.leases[s] = lease{worker: worker, expires: exp}
	}
	return LeaseResponse{Shards: grant, TTLMS: int(c.cfg.LeaseTTL / time.Millisecond)}
}

// Heartbeat extends every lease the worker holds by one TTL and
// reports whether the worker has been quarantined meanwhile.
func (c *Coordinator) Heartbeat(worker string) (quarantined string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	if reason, bad := c.quarantined[worker]; bad {
		return reason
	}
	exp := c.now().Add(c.cfg.LeaseTTL)
	for shard, l := range c.leases {
		if l.worker == worker {
			c.leases[shard] = lease{worker: worker, expires: exp}
		}
	}
	return ""
}

// Report merges one worker-reported shard record. At-least-once safe:
// duplicates of an already-merged identical record are acknowledged
// without effect; a conflicting duplicate triggers adjudication by
// local re-execution. Fresh records are accepted directly, or verified
// first when the spot-check policy or an incumbent improvement demands
// it; a refuted report quarantines the worker.
func (c *Coordinator) Report(worker string, cp core.ShardCheckpoint, poisons []core.QuarantinedPoint) ReportResponse {
	if cp.Shard < 0 || cp.Shard >= c.nShards {
		return ReportResponse{Err: fmt.Sprintf("shard %d out of range [0,%d)", cp.Shard, c.nShards)}
	}
	c.mu.Lock()
	c.touchLocked(worker)
	if reason, bad := c.quarantined[worker]; bad {
		c.mu.Unlock()
		return ReportResponse{Quarantined: reason}
	}
	if c.complete {
		c.mu.Unlock()
		return ReportResponse{OK: true, Done: true}
	}
	if c.verifying[cp.Shard] {
		// Another report for this shard is mid-adjudication; the truth
		// it computes supersedes this one.
		c.mu.Unlock()
		return ReportResponse{OK: true}
	}
	if prev, merged := c.done[cp.Shard]; merged {
		if sameRecord(prev, cp) {
			c.mu.Unlock()
			return ReportResponse{OK: true, Stale: true}
		}
		// Two honest executions cannot disagree: someone lied. Re-execute
		// locally and quarantine whichever side the truth refutes.
		return c.verifyAndMerge(worker, cp, nil, true)
	}
	improves := cp.Found && (!c.found || core.BetterPoint(cp.BestObj, cp.Best, c.bestObj, c.bestPt))
	if improves || c.spotCheck(cp.Shard) {
		return c.verifyAndMerge(worker, cp, poisons, false)
	}
	c.acceptLocked(cp.Shard, cp, poisons, worker, false)
	// Done on the completing report saves the worker a doomed lease
	// round-trip against a coordinator that may be gone by then.
	done := c.complete
	c.mu.Unlock()
	return ReportResponse{OK: true, Done: done}
}

// spotCheck is the deterministic verification coin flip for a shard:
// pure in (VerifySeed, shard), so a given seed re-checks the same
// shards on every run.
func (c *Coordinator) spotCheck(shard int) bool {
	frac := c.cfg.VerifyFrac
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|verify|%d", c.cfg.VerifySeed, shard)
	return float64(h.Sum64()>>11)/float64(1<<53) < frac
}

// verifyAndMerge re-executes the reported shard locally and merges the
// truth. Entered with mu held; the re-execution itself runs unlocked
// (it is real evaluation work) behind the verifying guard, so
// heartbeats and other reports keep flowing. When adjudicating a
// conflict with an already-merged record, a refuted previous reporter
// is quarantined too.
func (c *Coordinator) verifyAndMerge(worker string, cp core.ShardCheckpoint, poisons []core.QuarantinedPoint, conflict bool) ReportResponse {
	c.verifying[cp.Shard] = true
	c.mu.Unlock()
	truth, truthPoisons, err := c.eval.SweepShard(c.runCtx, c.pts, cp.Shard, c.size)
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.verifying, cp.Shard)
	if err != nil {
		// The coordinator itself could not execute the shard (shutdown,
		// or a non-point-local failure). Without ground truth nothing
		// merges; the shard goes back in the queue unless already done.
		if _, merged := c.done[cp.Shard]; !merged {
			c.pending = append([]int{cp.Shard}, c.pending...)
		}
		c.logf("distrib: verification of shard %d failed: %v", cp.Shard, err)
		return ReportResponse{OK: true}
	}
	c.verifies++
	if conflict {
		if prev, merged := c.done[cp.Shard]; merged && !sameRecord(truth, prev) {
			// The merged record was the lie; its reporter goes, and the
			// rollback re-queues its other unverified shards.
			c.quarantineLocked(c.reporter[cp.Shard], fmt.Sprintf("merged record for shard %d refuted by re-evaluation", cp.Shard))
		}
	}
	if !sameRecord(truth, cp) {
		c.mismatches++
		c.quarantineLocked(worker, fmt.Sprintf("report for shard %d refuted by re-evaluation", cp.Shard))
		// The re-execution still produced the truth: merge it so the
		// lie costs the liar, not the sweep.
		c.acceptLocked(cp.Shard, truth, truthPoisons, "", true)
		return ReportResponse{Quarantined: c.quarantined[worker]}
	}
	c.acceptLocked(cp.Shard, truth, truthPoisons, worker, true)
	return ReportResponse{OK: true, Done: c.complete}
}

// quarantineLocked refuses a worker and rolls back its unverified
// contributions: merged-but-unverified shards it reported and leases it
// still holds all go back to the front of the queue. Verified records
// are the coordinator's own computations and stay. Callers hold mu.
func (c *Coordinator) quarantineLocked(worker, reason string) {
	if worker == "" {
		return
	}
	if _, already := c.quarantined[worker]; already {
		return
	}
	c.quarantined[worker] = reason
	var requeue []int
	for shard, who := range c.reporter {
		if who == worker && !c.verified[shard] {
			delete(c.done, shard)
			delete(c.reporter, shard)
			c.donePoints -= shardSpan(shard, c.size, len(c.pts))
			requeue = append(requeue, shard)
		}
	}
	for shard, l := range c.leases {
		if l.worker == worker {
			delete(c.leases, shard)
			if _, merged := c.done[shard]; !merged && !c.verifying[shard] {
				requeue = append(requeue, shard)
			}
		}
	}
	sort.Ints(requeue)
	c.pending = append(requeue, c.pending...)
	c.steals += len(requeue)
	c.logf("distrib: quarantined worker %s (%s); re-queued %d shards", worker, reason, len(requeue))
}

// acceptLocked installs one merged record: releases the shard's lease,
// removes it from the queue, writes the ledger, advances the incumbent
// (verified records only — the invariant that makes the winner provably
// correct), and completes the sweep when it was the last shard.
// Callers hold mu.
func (c *Coordinator) acceptLocked(shard int, cp core.ShardCheckpoint, poisons []core.QuarantinedPoint, worker string, isVerified bool) {
	delete(c.leases, shard)
	for i, s := range c.pending {
		if s == shard {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	if _, was := c.done[shard]; !was {
		c.donePoints += shardSpan(shard, c.size, len(c.pts))
	}
	c.done[shard] = cp
	c.reporter[shard] = worker
	c.verified[shard] = isVerified
	improved := false
	if isVerified && cp.Found && (!c.found || core.BetterPoint(cp.BestObj, cp.Best, c.bestObj, c.bestPt)) {
		c.found, c.bestPt, c.bestObj = true, cp.Best, cp.BestObj
		improved = true
	}
	for _, q := range poisons {
		if _, seen := c.poisoned[q.Point]; seen {
			continue
		}
		c.poisoned[q.Point] = q
		if c.cfg.Ledger != nil {
			if err := core.WritePoisonedCheckpoint(c.cfg.Ledger, q); err != nil {
				c.logf("distrib: ledger: %v", err)
			}
		}
	}
	if c.cfg.Ledger != nil {
		// Duplicate or superseding records are fine: LoadCheckpoint is
		// last-record-wins, so a rolled-back lie corrected by a later
		// verified record leaves the loaded state truthful.
		if err := core.WriteShardCheckpoint(c.cfg.Ledger, cp); err != nil {
			c.logf("distrib: ledger: %v", err)
		}
	}
	if c.cfg.Progress != nil {
		var inc *core.Evaluation
		c.cfg.Progress(core.Progress{
			Phase:       "distrib",
			Done:        c.donePoints,
			Total:       len(c.pts),
			Incumbent:   inc,
			Improved:    improved,
			Quarantined: len(c.poisoned),
			Elapsed:     time.Since(c.began),
		})
	}
	if len(c.done) == c.nShards && !c.complete {
		c.complete = true
		close(c.doneCh)
	}
}

// Wait blocks until every shard has merged, then re-evaluates the
// winner locally at full fidelity and returns the result. Returns
// ctx.Err on cancellation and ErrCoordinatorClosed if Close preempted
// completion.
func (c *Coordinator) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-c.doneCh:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closeCh:
		select {
		case <-c.doneCh:
		default:
			return nil, ErrCoordinatorClosed
		}
	}
	c.mu.Lock()
	res := &Result{
		Total:       len(c.pts),
		Shards:      c.nShards,
		Steals:      c.steals,
		Verified:    c.verifies,
		Mismatches:  c.mismatches,
		Quarantined: len(c.poisoned),
	}
	// The winner re-derives from the merged records under the same
	// total order the single-process sweep uses; it necessarily equals
	// the incumbent, which only verified records ever advanced.
	found := false
	var bestPt core.DesignPoint
	bestObj := math.Inf(1)
	for _, cp := range c.done {
		res.Feasible += cp.Feasible
		if cp.Found && (!found || core.BetterPoint(cp.BestObj, cp.Best, bestObj, bestPt)) {
			found, bestPt, bestObj = true, cp.Best, cp.BestObj
		}
	}
	for _, q := range c.poisoned {
		res.Poisoned = append(res.Poisoned, q)
	}
	for w := range c.quarantined {
		res.QuarantinedWorkers = append(res.QuarantinedWorkers, w)
	}
	c.mu.Unlock()
	sort.Slice(res.Poisoned, func(i, j int) bool { return res.Poisoned[i].Point.Less(res.Poisoned[j].Point) })
	sort.Strings(res.QuarantinedWorkers)
	if found {
		ev, err := c.eval.EvaluateFullContext(ctx, bestPt)
		if err != nil {
			return nil, fmt.Errorf("distrib: winner re-evaluation: %w", err)
		}
		res.Best = ev
	}
	if c.cfg.Ledger != nil {
		if err := c.cfg.Ledger.Flush(); err != nil {
			return nil, fmt.Errorf("distrib: ledger: %w", err)
		}
	}
	return res, nil
}

// Status snapshots the coordinator's state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Fingerprint: c.fingerprint,
		Total:       len(c.pts),
		ShardSize:   c.size,
		Shards:      c.nShards,
		Done:        len(c.done),
		Pending:     len(c.pending),
		Leased:      len(c.leases),
		Steals:      c.steals,
		Verifies:    c.verifies,
		Mismatches:  c.mismatches,
		Workers:     len(c.workers),
		Found:       c.found,
		Complete:    c.complete,
	}
	if c.found {
		st.BestObj = c.bestObj
	}
	for s := range c.done {
		if c.verified[s] {
			st.VerifiedShards++
		}
	}
	for w := range c.quarantined {
		st.Quarantined = append(st.Quarantined, w)
	}
	sort.Strings(st.Quarantined)
	return st
}

// sameRecord compares two shard records for exact equality — the
// deterministic pipeline makes honest executions bit-identical, so any
// difference (including in the float bits of the objective) is a
// refutation, not noise.
func sameRecord(a, b core.ShardCheckpoint) bool {
	if a.Shard != b.Shard || a.Feasible != b.Feasible || a.Found != b.Found {
		return false
	}
	if !a.Found {
		return true
	}
	return a.Best == b.Best && math.Float64bits(a.BestObj) == math.Float64bits(b.BestObj)
}

// shardSpan returns the point count of shard idx in an n-point
// enumeration (the final shard may be short).
func shardSpan(idx, size, n int) int {
	lo := idx * size
	hi := lo + size
	if hi > n {
		hi = n
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
