package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"tesa/internal/core"
	"tesa/internal/faults"
	"tesa/internal/jobspec"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// ErrWorkerCrashed is the error RunWorker returns when an injected
// crash@shard fault fires: the worker abandons its leases and exits
// without reporting, exactly like a killed process.
var ErrWorkerCrashed = errors.New("distrib: injected worker crash")

// WorkerConfig configures one sweep worker.
type WorkerConfig struct {
	// Coord is the coordinator's base URL — the mount point of its
	// Handler (e.g. http://host:9090/v1/distrib behind tesa-server, or
	// the bare address of a tesa-sweep -coordinate process).
	Coord string
	// Name identifies the worker to the coordinator; "" generates one.
	Name string
	// Client is the HTTP client ( nil = http.DefaultClient).
	Client *http.Client
	// Store is the worker's local memo store. Optional.
	Store *memo.Store
	// Tel is the worker's observability hub. Optional.
	Tel *telemetry.Telemetry
	// Faults is the worker's fault plan. Its shard-stage rules
	// (crash/stall/lie) drive the worker loop itself; any pipeline
	// rules are injected into the evaluator alongside the spec's own.
	Faults *faults.Plan
	// Logf receives worker lifecycle lines. Optional.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	// Name is the worker's (possibly generated) identity.
	Name string
	// Shards and Points count reported work; Stale counts reports for
	// shards the coordinator had already merged (stolen leases).
	Shards, Points, Stale int
	// Crashes, Stalls, and Lies count injected worker faults fired.
	Crashes, Stalls, Lies int
}

// RunWorker joins the coordinator, leases shards, executes them with
// the evaluator the spec resolves to, and reports records until the
// sweep completes. It returns ErrWorkerQuarantined if the coordinator
// refutes one of its reports, ErrWorkerCrashed on an injected crash,
// and ctx's error on cancellation.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*WorkerStats, error) {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Name == "" {
		cfg.Name = "w-" + telemetry.NewRunID()[:8]
	}
	stats := &WorkerStats{Name: cfg.Name}
	base := strings.TrimRight(cfg.Coord, "/")
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var info InfoResponse
	if err := getJSON(ctx, cfg.Client, base+"/info", &info); err != nil {
		return stats, fmt.Errorf("distrib: worker: %w", err)
	}
	specData, err := getRaw(ctx, cfg.Client, base+"/spec")
	if err != nil {
		return stats, fmt.Errorf("distrib: worker: %w", err)
	}
	spec, err := jobspec.Parse(specData)
	if err != nil {
		return stats, fmt.Errorf("distrib: worker: coordinator spec: %w", err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		return stats, fmt.Errorf("distrib: worker: coordinator spec: %w", err)
	}
	// The fingerprint binds both sides to one canonical enumeration: a
	// worker whose resolution disagrees must not execute anything.
	if got := r.Space.Fingerprint(); got != info.Fingerprint {
		return stats, fmt.Errorf("distrib: worker: space fingerprint %s does not match coordinator %s", got, info.Fingerprint)
	}
	pts := r.Space.Enumerate()
	if len(pts) != info.Total || info.ShardSize <= 0 || info.Shards != (len(pts)+info.ShardSize-1)/info.ShardSize {
		return stats, fmt.Errorf("distrib: worker: decomposition %d/%d/%d does not cover %d points",
			info.Total, info.ShardSize, info.Shards, len(pts))
	}

	shardPlan, extraPipeline := cfg.Faults.SplitWorker()
	r.FaultPlan = mergePlans(r.FaultPlan, extraPipeline)
	eval, err := jobspec.NewEvaluator(r, jobspec.Runtime{Store: cfg.Store, Tel: cfg.Tel})
	if err != nil {
		return stats, fmt.Errorf("distrib: worker: %w", err)
	}

	// Heartbeat in the background so leases survive shards that
	// evaluate longer than the TTL. An injected stall suppresses the
	// heartbeats — that is precisely what makes the worker a straggler
	// whose lease gets stolen.
	ttl := time.Duration(info.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	var stalling atomic.Bool
	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if stalling.Load() {
					continue
				}
				var hb HeartbeatResponse
				_ = postJSON(hbCtx, cfg.Client, base+"/heartbeat", workerRequest{Worker: cfg.Name}, &hb)
			}
		}
	}()

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var grant LeaseResponse
		if err := postJSON(ctx, cfg.Client, base+"/lease", workerRequest{Worker: cfg.Name}, &grant); err != nil {
			return stats, fmt.Errorf("distrib: worker: %w", err)
		}
		switch {
		case grant.Quarantined != "":
			return stats, fmt.Errorf("%w: %s", ErrWorkerQuarantined, grant.Quarantined)
		case grant.Done:
			return stats, nil
		case len(grant.Shards) == 0:
			wait := time.Duration(grant.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return stats, err
			}
			continue
		}
		for _, idx := range grant.Shards {
			outcome := shardPlan.AtShard(idx)
			if outcome != nil && outcome.Crash {
				stats.Crashes++
				logf("worker %s: injected crash at shard %d", cfg.Name, idx)
				return stats, ErrWorkerCrashed
			}
			if outcome != nil && outcome.Stall {
				stats.Stalls++
				logf("worker %s: injected stall at shard %d for %s", cfg.Name, idx, outcome.StallFor)
				stalling.Store(true)
				err := sleepCtx(ctx, outcome.StallFor)
				stalling.Store(false)
				if err != nil {
					return stats, err
				}
			}
			cp, poisons, err := eval.SweepShard(ctx, pts, idx, info.ShardSize)
			if err != nil {
				return stats, fmt.Errorf("distrib: worker: shard %d: %w", idx, err)
			}
			if outcome != nil && outcome.Lie {
				stats.Lies++
				cp = corruptRecord(cp, pts, idx, info.ShardSize)
				logf("worker %s: injected lie at shard %d (claiming obj %g)", cfg.Name, idx, cp.BestObj)
			}
			req := ReportRequest{
				Worker:   cfg.Name,
				Shard:    cp.Shard,
				Feasible: cp.Feasible,
				Found:    cp.Found,
			}
			if cp.Found {
				req.BestDim, req.BestICS, req.BestObj = cp.Best.ArrayDim, cp.Best.ICSUM, cp.BestObj
			}
			for _, q := range poisons {
				req.Poisoned = append(req.Poisoned, ReportPoison{
					Dim: q.Point.ArrayDim, ICS: q.Point.ICSUM, Stage: q.Stage, Reason: q.Reason,
				})
			}
			var resp ReportResponse
			if err := postJSON(ctx, cfg.Client, base+"/report", req, &resp); err != nil {
				return stats, fmt.Errorf("distrib: worker: %w", err)
			}
			if resp.Quarantined != "" {
				return stats, fmt.Errorf("%w: %s", ErrWorkerQuarantined, resp.Quarantined)
			}
			if resp.Err != "" {
				return stats, fmt.Errorf("distrib: worker: report rejected: %s", resp.Err)
			}
			if resp.Stale {
				stats.Stale++
			}
			stats.Shards++
			stats.Points += shardSpan(idx, info.ShardSize, len(pts))
			if resp.Done {
				// This report completed the sweep; the coordinator may
				// exit before another lease round-trip would land.
				return stats, nil
			}
		}
	}
}

// corruptRecord is the lie@shard payload: the record claims a
// better-than-anything winner, which forces the coordinator's
// incumbent-improvement verification — a lie that could steer the
// sweep's winner is exactly the lie that is always re-checked.
func corruptRecord(cp core.ShardCheckpoint, pts []core.DesignPoint, idx, size int) core.ShardCheckpoint {
	if cp.Found {
		cp.BestObj = -math.Abs(cp.BestObj) - 1e9
	} else {
		cp.Found = true
		cp.Best = pts[idx*size]
		cp.BestObj = -1e9
		cp.Feasible = 1
	}
	return cp
}

// mergePlans concatenates two fault plans, preserving the nil fast
// path.
func mergePlans(a, b *faults.Plan) *faults.Plan {
	if a == nil || len(a.Rules) == 0 {
		return b
	}
	if b == nil || len(b.Rules) == 0 {
		return a
	}
	rules := make([]faults.Rule, 0, len(a.Rules)+len(b.Rules))
	rules = append(rules, a.Rules...)
	rules = append(rules, b.Rules...)
	return &faults.Plan{Rules: rules}
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// getRaw fetches a URL body with retries on transient failures.
func getRaw(ctx context.Context, cl *http.Client, url string) ([]byte, error) {
	var body []byte
	err := withRetries(ctx, func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		resp, err := cl.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("GET %s: %s: %s", url, resp.Status, truncate(body))
		}
		return resp.StatusCode, nil
	})
	return body, err
}

// getJSON fetches and decodes a JSON document.
func getJSON(ctx context.Context, cl *http.Client, url string, dst any) error {
	body, err := getRaw(ctx, cl, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, dst)
}

// postJSON posts a JSON document and decodes the JSON response,
// retrying transient failures. 4xx responses are terminal: the
// protocol handlers answer protocol-level refusals (quarantine, done)
// inside 200 bodies, so a 4xx means a malformed request.
func postJSON(ctx context.Context, cl *http.Client, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return withRetries(ctx, func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cl.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("POST %s: %s: %s", url, resp.Status, truncate(body))
		}
		return resp.StatusCode, json.Unmarshal(body, out)
	})
}

// withRetries runs fn up to four times with doubling backoff, retrying
// transport errors and 5xx responses — a coordinator blip (restart,
// overload) should cost a worker a moment, not its run.
func withRetries(ctx context.Context, fn func() (int, error)) error {
	var err error
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			if serr := sleepCtx(ctx, backoff); serr != nil {
				return serr
			}
			backoff *= 2
		}
		var status int
		status, err = fn()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if status >= 400 && status < 500 {
			return err
		}
	}
	return err
}

// truncate bounds an error-body excerpt.
func truncate(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
