// Package distrib lifts the sharded exhaustive sweep to N processes: a
// coordinator leases contiguous shard ranges of the canonical
// enumeration to workers over HTTP, workers execute shards with the
// exact evaluator a local run would build (internal/jobspec), and the
// coordinator merges the reported checkpoint.shard records into one
// resumable ledger byte-compatible with single-process checkpoints —
// LoadCheckpoint, resume, and tesa-trace read it unchanged.
//
// The protocol is built to stay correct under failure:
//
//   - Leases are heartbeat-scoped: a worker that crashes or stalls past
//     the lease TTL loses the lease, and the janitor re-queues the shard
//     at the front of the pending queue (work stealing). A stolen shard
//     may still be reported by the straggler later; evaluation is
//     deterministic, so the duplicate record is identical and merging is
//     at-least-once safe under the BetterPoint total order.
//
//   - Reports are trust-but-verify: the coordinator re-executes a
//     configurable fraction of reported shards locally, plus every
//     report that would improve the current incumbent, plus any report
//     conflicting with an already-merged record. A mismatch quarantines
//     the worker: its unverified contributions are rolled back, its
//     outstanding leases re-queued, and its future requests refused.
//     Because incumbent-improving reports are always verified before
//     acceptance, the final winner is provably the coordinator's own
//     computation — a lying worker cannot steer it.
//
// Worker-level failures are injectable deterministically via the
// crash@shard / stall@shard / lie@shard rules of internal/faults, which
// is how the protocol's -race tests prove that a sweep with lost and
// lying workers produces a bit-identical winner to a clean
// single-process run.
package distrib

import (
	"errors"
	"time"

	"tesa/internal/core"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// Protocol defaults; all are overridable via Config.
const (
	// DefaultLeaseTTL is the heartbeat deadline after which a worker's
	// leases are stolen.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultLeaseShards is the maximum contiguous shard count granted
	// per lease request.
	DefaultLeaseShards = 4
	// DefaultVerifyFrac is the fraction of reported shards the
	// coordinator re-executes as a spot check (incumbent-improving and
	// conflicting reports are always verified, regardless).
	DefaultVerifyFrac = 0.1
)

// ErrWorkerQuarantined is returned by RunWorker when the coordinator
// has refuted one of this worker's reports and refuses further work.
var ErrWorkerQuarantined = errors.New("distrib: worker quarantined by coordinator")

// ErrCoordinatorClosed is returned by Wait when the coordinator is
// closed before the sweep completes.
var ErrCoordinatorClosed = errors.New("distrib: coordinator closed")

// Config configures a Coordinator.
type Config struct {
	// Spec is the raw tesa.jobspec/v1 sweep document. The coordinator
	// serves these exact bytes to workers, and both sides resolve them
	// independently — same spec, same evaluator, bit-identical
	// evaluations everywhere. Required; the kind must be "sweep".
	Spec []byte
	// BaseDir resolves relative workload_file references in the spec.
	// Distributed specs should prefer inline or built-in workloads:
	// workers resolve the spec in their own filesystem.
	BaseDir string

	// LeaseTTL is the heartbeat deadline on granted leases (0 =
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LeaseShards caps the shards granted per lease request (0 =
	// DefaultLeaseShards).
	LeaseShards int
	// VerifyFrac is the spot-check fraction in [0,1]; 0 means
	// DefaultVerifyFrac, and a negative value disables spot checks
	// (incumbent-improving and conflicting reports are still verified).
	VerifyFrac float64
	// VerifySeed feeds the deterministic spot-check decision, so a
	// given seed re-checks the same shards on every run.
	VerifySeed int64

	// Ledger receives the merged checkpoint stream: one header plus one
	// checkpoint.shard / checkpoint.poisoned record per merge, written
	// through the same exported core writers as a single-process sweep.
	// Optional; point it at a telemetry.FileSink for a resumable file.
	Ledger telemetry.EventSink
	// Resume credits the shards of a previously written ledger without
	// re-executing them; the state must match the spec's space and
	// decomposition. Resumed records are trusted (marked verified).
	Resume *core.CheckpointState
	// RunID, when non-empty, is stamped into the ledger header.
	RunID string

	// Store is the coordinator's memo store, warming its verification
	// re-executions. Optional.
	Store *memo.Store
	// Tel is the coordinator's observability hub. Optional.
	Tel *telemetry.Telemetry
	// Progress receives one update per merged shard, Phase "distrib".
	Progress core.ProgressFunc
	// Logf receives coordinator lifecycle lines (leases, steals,
	// quarantines). Optional.
	Logf func(format string, args ...any)
}

// Result is the outcome of a completed distributed sweep.
type Result struct {
	// Best is the global optimum, re-evaluated locally by the
	// coordinator at full fidelity; nil when nothing is feasible.
	Best *core.Evaluation
	// Feasible, Total, and Shards describe the swept space.
	Feasible, Total, Shards int
	// Quarantined counts design points whose evaluation failed;
	// Poisoned lists them sorted by design point.
	Quarantined int
	Poisoned    []core.QuarantinedPoint
	// Steals counts shards re-queued after lease expiry or worker
	// quarantine; Verified counts coordinator re-executions; Mismatches
	// counts refuted reports.
	Steals, Verified, Mismatches int
	// QuarantinedWorkers lists the workers refuted during the sweep.
	QuarantinedWorkers []string
}

// Status is a point-in-time snapshot of coordinator state, served at
// GET /status for dashboards and the CLIs.
type Status struct {
	// Fingerprint, Total, ShardSize, and Shards describe the
	// decomposition being swept.
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
	ShardSize   int    `json:"shard_size"`
	Shards      int    `json:"shards"`
	// Done and VerifiedShards count merged and coordinator-verified
	// shards; Pending and Leased count the rest of the queue.
	Done           int `json:"done"`
	VerifiedShards int `json:"verified_shards"`
	Pending        int `json:"pending"`
	Leased         int `json:"leased"`
	// Steals, Verifies, and Mismatches are the fault-tolerance
	// counters.
	Steals     int `json:"steals"`
	Verifies   int `json:"verifies"`
	Mismatches int `json:"mismatches"`
	// Workers counts distinct workers seen; Quarantined lists the
	// refuted ones.
	Workers     int      `json:"workers"`
	Quarantined []string `json:"quarantined,omitempty"`
	// Found and BestObj describe the current incumbent.
	Found   bool    `json:"found"`
	BestObj float64 `json:"best_obj,omitempty"`
	// Complete reports whether every shard has merged.
	Complete bool `json:"complete"`
}
