// Command exportdoc fails when an exported symbol lacks a doc comment.
//
// Usage:
//
//	go run ./internal/lint/exportdoc [dir ...]
//
// Each dir is scanned non-recursively for .go files (tests excluded).
// An exported func, method (on an exported receiver), type, const or
// var must carry a doc comment; specs inside a parenthesized const/var/
// type block may instead be covered by the block's own doc comment.
// Violations are printed one per line as file:line: symbol, and the
// command exits 1 if there were any — CI runs it over the public API
// surface (see .github/workflows/ci.yml) so documentation debt fails
// the build instead of accreting silently.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			bad += checkFile(filepath.Join(dir, name))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "exportdoc: %d exported symbols without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkFile reports (and counts) the undocumented exported symbols of
// one source file.
func checkFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bad := 0
	report := func(pos token.Pos, symbol string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", p.Filename, p.Line, symbol)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), funcName(d))
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedReceiver reports whether d is a plain function or a method on
// an exported receiver type (methods on unexported types are internal
// API and exempt).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders a method as Recv.Name for the violation listing.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}
