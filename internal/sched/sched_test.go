package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func profiles6() []DNNProfile {
	return []DNNProfile{
		{Name: "HandposeNet", LatencySec: 0.002, PowerWatts: 1.5},
		{Name: "U-Net", LatencySec: 0.012, PowerWatts: 3.2},
		{Name: "MobileNet", LatencySec: 0.003, PowerWatts: 1.8},
		{Name: "ResNet-50", LatencySec: 0.005, PowerWatts: 2.9},
		{Name: "DNL", LatencySec: 0.006, PowerWatts: 2.4},
		{Name: "Transformer", LatencySec: 0.004, PowerWatts: 2.0},
	}
}

func identity(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 2, identity(2)); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := Build(profiles6(), 0, nil); err == nil {
		t.Error("zero chiplets accepted")
	}
	if _, err := Build(profiles6(), 2, []int{0}); err == nil {
		t.Error("short corner order accepted")
	}
	if _, err := Build(profiles6(), 2, []int{0, 0}); err == nil {
		t.Error("non-permutation corner order accepted")
	}
	bad := profiles6()
	bad[3].LatencySec = 0
	if _, err := Build(bad, 2, identity(2)); err == nil {
		t.Error("zero latency accepted")
	}
}

// TestEveryDNNScheduledOnce: completeness — each DNN appears exactly once
// across all chiplets (property over chiplet counts).
func TestEveryDNNScheduledOnce(t *testing.T) {
	f := func(nSel uint8) bool {
		n := 1 + int(nSel%6)
		s, err := Build(profiles6(), n, identity(n))
		if err != nil {
			return false
		}
		count := make(map[int]int)
		for _, dnns := range s.ChipletDNNs {
			for _, d := range dnns {
				count[d]++
			}
		}
		if len(count) != 6 {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOneDNNPerChipletWhenEnough: with six chiplets each DNN gets its own
// chiplet (the paper's max-parallelism layout).
func TestOneDNNPerChipletWhenEnough(t *testing.T) {
	s, err := Build(profiles6(), 6, identity(6))
	if err != nil {
		t.Fatal(err)
	}
	for c, dnns := range s.ChipletDNNs {
		if len(dnns) != 1 {
			t.Errorf("chiplet %d has %d DNNs, want 1", c, len(dnns))
		}
	}
	// Makespan = slowest DNN.
	if math.Abs(s.MakespanSec-0.012) > 1e-12 {
		t.Errorf("makespan %g, want 0.012", s.MakespanSec)
	}
}

// TestHottestDNNGoesToBestCorner: the power-density-aware rule — the
// highest-power DNN (U-Net at 3.2 W) lands on the first chiplet of the
// corner order.
func TestHottestDNNGoesToBestCorner(t *testing.T) {
	corner := []int{3, 1, 0, 2, 5, 4}
	s, err := Build(profiles6(), 6, corner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ChipletDNNs[3]) != 1 || s.ChipletDNNs[3][0] != 1 {
		t.Errorf("chiplet 3 (best corner) runs %v, want [1] (U-Net)", s.ChipletDNNs[3])
	}
}

// TestMakespanIsMaxChipletLoad and not the sum over all chiplets.
func TestMakespanIsMaxChipletLoad(t *testing.T) {
	s, err := Build(profiles6(), 2, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for _, dnns := range s.ChipletDNNs {
		var load float64
		for _, d := range dnns {
			load += profiles6()[d].LatencySec
		}
		if load > max {
			max = load
		}
	}
	if math.Abs(s.MakespanSec-max) > 1e-12 {
		t.Errorf("makespan %g, want max load %g", s.MakespanSec, max)
	}
}

// TestGreedyBalancesLoad: on two chiplets the greedy rule must produce a
// makespan within 2x of the lower bound (sum/2), a basic LPT-style
// guarantee for this workload.
func TestGreedyBalancesLoad(t *testing.T) {
	s, err := Build(profiles6(), 2, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range profiles6() {
		total += p.LatencySec
	}
	if s.MakespanSec > total {
		t.Errorf("makespan %g exceeds serial total %g", s.MakespanSec, total)
	}
	if s.MakespanSec < total/2 {
		t.Errorf("makespan %g below the 2-chiplet lower bound %g", s.MakespanSec, total/2)
	}
	// U-Net (0.012) dominates: optimal is 0.020 vs 0.032 serial; greedy
	// must not put everything on one chiplet.
	if s.MakespanSec > 0.75*total {
		t.Errorf("makespan %g suggests no balancing (serial %g)", s.MakespanSec, total)
	}
}

// TestPhasesPartitionMakespan: phases tile [0, makespan) without gaps or
// overlaps, and phase boundaries coincide with completion events.
func TestPhasesPartitionMakespan(t *testing.T) {
	f := func(nSel uint8) bool {
		n := 1 + int(nSel%6)
		s, err := Build(profiles6(), n, identity(n))
		if err != nil {
			return false
		}
		if len(s.Phases) == 0 {
			return false
		}
		if s.Phases[0].StartSec != 0 {
			return false
		}
		for i := 0; i+1 < len(s.Phases); i++ {
			if math.Abs(s.Phases[i].EndSec-s.Phases[i+1].StartSec) > 1e-12 {
				return false
			}
			if s.Phases[i].Duration() <= 0 {
				return false
			}
		}
		last := s.Phases[len(s.Phases)-1]
		return math.Abs(last.EndSec-s.MakespanSec) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPhaseZeroAllBusy: at t=0 every chiplet with work is running its
// first DNN; with 6 chiplets and 6 DNNs, none is idle.
func TestPhaseZeroAllBusy(t *testing.T) {
	s, err := Build(profiles6(), 6, identity(6))
	if err != nil {
		t.Fatal(err)
	}
	for c, d := range s.Phases[0].Running {
		if d == -1 {
			t.Errorf("chiplet %d idle in phase 0", c)
		}
		if d != s.ChipletDNNs[c][0] {
			t.Errorf("chiplet %d phase-0 DNN %d != first scheduled %d", c, d, s.ChipletDNNs[c][0])
		}
	}
}

// TestNonPreemption: within each chiplet, each DNN occupies one
// contiguous run of phases (it never disappears and comes back).
func TestNonPreemption(t *testing.T) {
	s, err := Build(profiles6(), 2, identity(2))
	if err != nil {
		t.Fatal(err)
	}
	for c := range s.ChipletDNNs {
		seenDone := make(map[int]bool)
		prev := -2
		for _, ph := range s.Phases {
			d := ph.Running[c]
			if d != prev && prev >= 0 {
				seenDone[prev] = true
			}
			if d >= 0 && seenDone[d] {
				t.Fatalf("chiplet %d: DNN %d resumed after completing", c, d)
			}
			prev = d
		}
	}
}

// TestLastPhaseSingleChipletBusy: at the end only the makespan-defining
// chiplet is still running.
func TestLastPhaseSingleChipletBusy(t *testing.T) {
	s, err := Build(profiles6(), 3, identity(3))
	if err != nil {
		t.Fatal(err)
	}
	last := s.Phases[len(s.Phases)-1]
	busy := 0
	for _, d := range last.Running {
		if d >= 0 {
			busy++
		}
	}
	if busy < 1 {
		t.Error("no chiplet busy in the final phase")
	}
}

// TestRandomProfilesProperties fuzzes the scheduler with random DNN
// profiles and checks structural invariants: completeness, phase
// partitioning, makespan consistency, and per-chiplet load accounting.
func TestRandomProfilesProperties(t *testing.T) {
	f := func(seed int64, nSel, cSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nDNN := 1 + int(nSel%10)
		nChip := 1 + int(cSel%6)
		profiles := make([]DNNProfile, nDNN)
		for i := range profiles {
			profiles[i] = DNNProfile{
				Name:       fmt.Sprintf("net%d", i),
				LatencySec: 0.0005 + rng.Float64()*0.02,
				PowerWatts: rng.Float64() * 4,
			}
		}
		order := rng.Perm(nChip)
		s, err := Build(profiles, nChip, order)
		if err != nil {
			return false
		}
		// Completeness.
		count := 0
		for _, dnns := range s.ChipletDNNs {
			count += len(dnns)
		}
		if count != nDNN {
			return false
		}
		// Makespan equals the max chiplet load.
		var maxLoad float64
		for _, dnns := range s.ChipletDNNs {
			var load float64
			for _, d := range dnns {
				load += profiles[d].LatencySec
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if math.Abs(maxLoad-s.MakespanSec) > 1e-12 {
			return false
		}
		// Phases tile [0, makespan).
		if len(s.Phases) == 0 || s.Phases[0].StartSec != 0 {
			return false
		}
		end := 0.0
		for _, ph := range s.Phases {
			if math.Abs(ph.StartSec-end) > 1e-12 || ph.Duration() <= 0 {
				return false
			}
			end = ph.EndSec
		}
		return math.Abs(end-s.MakespanSec) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPhaseBusyTimeAccounting: integrating each DNN's presence across
// phases recovers exactly its latency (no DNN is dropped or stretched).
func TestPhaseBusyTimeAccounting(t *testing.T) {
	profiles := profiles6()
	s, err := Build(profiles, 3, identity(3))
	if err != nil {
		t.Fatal(err)
	}
	busy := make([]float64, len(profiles))
	for _, ph := range s.Phases {
		for _, d := range ph.Running {
			if d >= 0 {
				busy[d] += ph.Duration()
			}
		}
	}
	for i, p := range profiles {
		if math.Abs(busy[i]-p.LatencySec) > 1e-12 {
			t.Errorf("%s: phase presence %.6f != latency %.6f", p.Name, busy[i], p.LatencySec)
		}
	}
}
