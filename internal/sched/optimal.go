package sched

import (
	"fmt"
	"math"
)

// OptimalMakespan computes the true minimum makespan of assigning the
// DNNs to numChiplets chiplets by exhaustive enumeration — tractable for
// multi-DNN workloads of the paper's size (6 DNNs over up to 6 chiplets
// is 6^6 assignments). It validates the greedy policy's quality: the
// deterministic scheduler is a 2-approximation in theory, and the tests
// pin that it stays within a few percent of optimal on the workload
// sizes TESA sees.
func OptimalMakespan(profiles []DNNProfile, numChiplets int) (float64, error) {
	if len(profiles) == 0 {
		return 0, fmt.Errorf("sched: no DNNs")
	}
	if numChiplets <= 0 {
		return 0, fmt.Errorf("sched: non-positive chiplet count %d", numChiplets)
	}
	if len(profiles) > 12 {
		return 0, fmt.Errorf("sched: exhaustive makespan limited to 12 DNNs, got %d", len(profiles))
	}
	for i, p := range profiles {
		if p.LatencySec <= 0 {
			return 0, fmt.Errorf("sched: DNN %d has non-positive latency", i)
		}
	}
	loads := make([]float64, numChiplets)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(profiles) {
			worst := 0.0
			for _, l := range loads {
				if l > worst {
					worst = l
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for c := 0; c < numChiplets; c++ {
			loads[c] += profiles[i].LatencySec
			// Branch and bound: only descend if this chiplet's load can
			// still beat the best makespan.
			if loads[c] < best {
				rec(i + 1)
			}
			loads[c] -= profiles[i].LatencySec
			// Symmetry break: an empty chiplet is interchangeable with
			// any other empty chiplet.
			if loads[c] == 0 {
				break
			}
		}
	}
	rec(0)
	return best, nil
}
