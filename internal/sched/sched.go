// Package sched implements TESA's deterministic, latency-, power-, and
// power-density-aware static scheduling policy for multi-DNN workloads on
// chiplet meshes.
//
// Per the paper: execution is non-preemptive (a DNN finishes before the
// next begins on the same chiplet); DNNs are first assigned to corner
// chiplets, then outer rows/columns, then the center, to avoid hot spots;
// when there are fewer chiplets than DNNs, the remaining DNNs are
// scheduled greedily onto idle chiplets. The concrete deterministic rule
// used here: the first round assigns the highest-power DNNs to the
// best-spreading (corner-first) chiplets; every subsequent DNN goes to
// the chiplet that becomes idle first (earliest-available, i.e.
// latency-greedy), tie-broken toward the chiplet with less accumulated
// energy (power-aware).
package sched

import (
	"fmt"
	"sort"
)

// DNNProfile is what the scheduler needs to know about one network on the
// candidate chiplet architecture.
type DNNProfile struct {
	Name       string
	LatencySec float64 // inference latency on this chiplet at the target frequency
	PowerWatts float64 // chiplet dynamic power while running this network
}

// Schedule is the static assignment of DNNs to chiplets.
type Schedule struct {
	// ChipletDNNs[c] lists network indices in execution order on chiplet
	// c (indices into the profile slice passed to Build).
	ChipletDNNs [][]int
	// MakespanSec is the workload completion time: the max over chiplets
	// of their summed DNN latencies. The frame-rate constraint applies to
	// this value.
	MakespanSec float64
	// Phases partition [0, makespan) into intervals of constant
	// chiplet activity; the thermal model runs a steady-state analysis
	// per phase, as the paper describes.
	Phases []Phase
}

// Phase is one interval of constant simultaneous execution.
type Phase struct {
	StartSec, EndSec float64
	// Running[c] is the network index executing on chiplet c during the
	// phase, or -1 when the chiplet is idle (leakage only).
	Running []int
}

// Duration returns the phase length in seconds.
func (p Phase) Duration() float64 { return p.EndSec - p.StartSec }

// Build computes the static schedule of the given DNN profiles onto
// numChiplets chiplets. cornerOrder ranks chiplets best-spreading first
// (from floorplan.Placement.CornerFirstOrder); it must be a permutation
// of 0..numChiplets-1.
func Build(profiles []DNNProfile, numChiplets int, cornerOrder []int) (*Schedule, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sched: no DNNs to schedule")
	}
	if numChiplets <= 0 {
		return nil, fmt.Errorf("sched: non-positive chiplet count %d", numChiplets)
	}
	if len(cornerOrder) != numChiplets {
		return nil, fmt.Errorf("sched: corner order has %d entries for %d chiplets", len(cornerOrder), numChiplets)
	}
	seen := make([]bool, numChiplets)
	for _, c := range cornerOrder {
		if c < 0 || c >= numChiplets || seen[c] {
			return nil, fmt.Errorf("sched: corner order %v is not a permutation of 0..%d", cornerOrder, numChiplets-1)
		}
		seen[c] = true
	}
	for i, p := range profiles {
		if p.LatencySec <= 0 {
			return nil, fmt.Errorf("sched: DNN %d (%s) has non-positive latency %g", i, p.Name, p.LatencySec)
		}
		if p.PowerWatts < 0 {
			return nil, fmt.Errorf("sched: DNN %d (%s) has negative power %g", i, p.Name, p.PowerWatts)
		}
	}

	// Deterministic DNN order: power-density proxy first (hottest DNNs to
	// the corners), then latency, then name for total order.
	order := make([]int, len(profiles))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := profiles[order[a]], profiles[order[b]]
		if pa.PowerWatts != pb.PowerWatts {
			return pa.PowerWatts > pb.PowerWatts
		}
		if pa.LatencySec != pb.LatencySec {
			return pa.LatencySec > pb.LatencySec
		}
		return pa.Name < pb.Name
	})

	s := &Schedule{ChipletDNNs: make([][]int, numChiplets)}
	busyUntil := make([]float64, numChiplets)
	energy := make([]float64, numChiplets)

	// Round 1: corner-first placement of the hottest DNNs.
	k := 0
	for ; k < len(order) && k < numChiplets; k++ {
		c := cornerOrder[k]
		d := order[k]
		s.ChipletDNNs[c] = append(s.ChipletDNNs[c], d)
		busyUntil[c] += profiles[d].LatencySec
		energy[c] += profiles[d].PowerWatts * profiles[d].LatencySec
	}
	// Remaining DNNs: earliest-available chiplet, tie-broken by lower
	// accumulated energy, then corner rank.
	cornerRank := make([]int, numChiplets)
	for rank, c := range cornerOrder {
		cornerRank[c] = rank
	}
	for ; k < len(order); k++ {
		best := 0
		for c := 1; c < numChiplets; c++ {
			if busyUntil[c] < busyUntil[best] ||
				(busyUntil[c] == busyUntil[best] && energy[c] < energy[best]) ||
				(busyUntil[c] == busyUntil[best] && energy[c] == energy[best] && cornerRank[c] < cornerRank[best]) {
				best = c
			}
		}
		d := order[k]
		s.ChipletDNNs[best] = append(s.ChipletDNNs[best], d)
		busyUntil[best] += profiles[d].LatencySec
		energy[best] += profiles[d].PowerWatts * profiles[d].LatencySec
	}

	for _, t := range busyUntil {
		if t > s.MakespanSec {
			s.MakespanSec = t
		}
	}
	s.Phases = buildPhases(profiles, s.ChipletDNNs, s.MakespanSec)
	return s, nil
}

// buildPhases slices the schedule at every DNN completion event.
func buildPhases(profiles []DNNProfile, chipletDNNs [][]int, makespan float64) []Phase {
	events := map[float64]bool{0: true, makespan: true}
	for _, dnns := range chipletDNNs {
		t := 0.0
		for _, d := range dnns {
			t += profiles[d].LatencySec
			events[t] = true
		}
	}
	times := make([]float64, 0, len(events))
	for t := range events {
		times = append(times, t)
	}
	sort.Float64s(times)

	var phases []Phase
	for i := 0; i+1 < len(times); i++ {
		mid := (times[i] + times[i+1]) / 2
		if times[i+1]-times[i] <= 0 {
			continue
		}
		running := make([]int, len(chipletDNNs))
		for c := range running {
			running[c] = -1
			t := 0.0
			for _, d := range chipletDNNs[c] {
				end := t + profiles[d].LatencySec
				if mid >= t && mid < end {
					running[c] = d
					break
				}
				t = end
			}
		}
		phases = append(phases, Phase{StartSec: times[i], EndSec: times[i+1], Running: running})
	}
	return phases
}
