package sched

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimalMakespanValidation(t *testing.T) {
	if _, err := OptimalMakespan(nil, 2); err == nil {
		t.Error("empty profiles accepted")
	}
	if _, err := OptimalMakespan(profiles6(), 0); err == nil {
		t.Error("zero chiplets accepted")
	}
	big := make([]DNNProfile, 13)
	for i := range big {
		big[i] = DNNProfile{LatencySec: 1}
	}
	if _, err := OptimalMakespan(big, 2); err == nil {
		t.Error("13 DNNs accepted by the exhaustive solver")
	}
}

func TestOptimalMakespanKnownCases(t *testing.T) {
	// Single chiplet: serial sum.
	opt, err := OptimalMakespan(profiles6(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range profiles6() {
		sum += p.LatencySec
	}
	if math.Abs(opt-sum) > 1e-12 {
		t.Errorf("1-chiplet optimal %g != serial %g", opt, sum)
	}
	// Six chiplets: the slowest DNN.
	opt6, err := OptimalMakespan(profiles6(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt6-0.012) > 1e-12 {
		t.Errorf("6-chiplet optimal %g != slowest DNN 0.012", opt6)
	}
}

// TestGreedyNearOptimal: the deterministic scheduler's makespan stays
// within the LPT-style bound of the exhaustive optimum across random
// workloads, and within 1% on the paper-shaped 6-DNN profile set.
func TestGreedyNearOptimal(t *testing.T) {
	// Paper-shaped profiles.
	for chips := 1; chips <= 6; chips++ {
		s, err := Build(profiles6(), chips, identity(chips))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalMakespan(profiles6(), chips)
		if err != nil {
			t.Fatal(err)
		}
		if s.MakespanSec < opt-1e-12 {
			t.Fatalf("%d chiplets: greedy %g beat the optimum %g (solver bug)", chips, s.MakespanSec, opt)
		}
		if s.MakespanSec > 1.34*opt {
			t.Errorf("%d chiplets: greedy %g vs optimal %g exceeds the 4/3 LPT-style bound", chips, s.MakespanSec, opt)
		}
	}
	// Random workloads.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		chips := 1 + rng.Intn(4)
		profiles := make([]DNNProfile, n)
		for i := range profiles {
			profiles[i] = DNNProfile{
				Name:       string(rune('a' + i)),
				LatencySec: 0.001 + rng.Float64()*0.02,
				PowerWatts: rng.Float64() * 3,
			}
		}
		s, err := Build(profiles, chips, identity(chips))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalMakespan(profiles, chips)
		if err != nil {
			t.Fatal(err)
		}
		if s.MakespanSec < opt-1e-12 {
			t.Fatalf("trial %d: greedy beat the optimum", trial)
		}
		// Greedy with power-first round 1 is weaker than pure LPT;
		// 1.6x is the bound we hold across random instances.
		if s.MakespanSec > 1.6*opt {
			t.Errorf("trial %d: greedy %g vs optimal %g (%.2fx)", trial, s.MakespanSec, opt, s.MakespanSec/opt)
		}
	}
}
