package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default22nm().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default22nm()
	bad.BondYield = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bond yield > 1 accepted")
	}
}

func TestDieYieldProperties(t *testing.T) {
	p := Default22nm()
	if y := p.DieYield(0); y != 1 {
		t.Errorf("zero-area yield = %g, want 1", y)
	}
	// Monotone decreasing in area, always in (0, 1].
	f := func(a, b uint16) bool {
		aa, bb := float64(a%400)+0.1, float64(b%400)+0.1
		if aa > bb {
			aa, bb = bb, aa
		}
		ya, yb := p.DieYield(aa), p.DieYield(bb)
		return ya >= yb && yb > 0 && ya <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Sanity: an 8 mm^2 chiplet at D0=0.8 should yield ~94%.
	if y := p.DieYield(8); y < 0.90 || y > 0.97 {
		t.Errorf("8 mm^2 yield = %.4f, want ~0.94", y)
	}
}

func TestDiesPerWafer(t *testing.T) {
	p := Default22nm()
	n := p.DiesPerWafer(8)
	// ~67,000 mm^2 usable / 8 mm^2 minus edge loss: several thousand.
	if n < 5000 || n > 9000 {
		t.Errorf("8 mm^2 dies per wafer = %.0f, want 5000..9000", n)
	}
	if p.DiesPerWafer(0) != 0 {
		t.Error("zero-area dies-per-wafer not zero")
	}
}

func TestDieCostMonotone(t *testing.T) {
	p := Default22nm()
	prev := 0.0
	for _, a := range []float64{1, 2, 4, 8, 16, 32, 64} {
		c := p.DieCost(a)
		if c <= prev {
			t.Errorf("die cost not increasing at %g mm^2: %g <= %g", a, c, prev)
		}
		prev = c
	}
}

func TestMCMRejectsBadSpecs(t *testing.T) {
	p := Default22nm()
	if _, err := p.MCM(ChipletSpec{ArrayDieMM2: 8}, 0, 64); err == nil {
		t.Error("zero chiplets accepted")
	}
	if _, err := p.MCM(ChipletSpec{}, 2, 64); err == nil {
		t.Error("zero die area accepted")
	}
	if _, err := p.MCM(ChipletSpec{ThreeD: true, ArrayDieMM2: 4}, 2, 64); err == nil {
		t.Error("3-D chiplet without SRAM die accepted")
	}
}

func TestMCMBreakdownConsistent(t *testing.T) {
	p := Default22nm()
	b, err := p.MCM(ChipletSpec{ArrayDieMM2: 8}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	sum := b.ChipletDies + b.Stacking + b.Interposer + b.Bonding
	if math.Abs(sum-b.Total) > 1e-9 {
		t.Errorf("breakdown sum %g != total %g", sum, b.Total)
	}
	if b.Stacking != 0 {
		t.Errorf("2-D MCM has stacking cost %g", b.Stacking)
	}
	if b.Total <= 0 {
		t.Errorf("total %g not positive", b.Total)
	}
}

// Test3DCostsMore: at equal silicon, a 3-D chiplet MCM costs more than
// the 2-D equivalent (extra stacking bond and its yield hit) — the
// paper's "3-D sacrifices 61% in MCM cost" direction.
func Test3DCostsMore(t *testing.T) {
	p := Default22nm()
	b2, err := p.MCM(ChipletSpec{ArrayDieMM2: 8}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := p.MCM(ChipletSpec{ThreeD: true, ArrayDieMM2: 4, SRAMDieMM2: 4}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b3.Total <= b2.Total {
		t.Errorf("3-D total %g not above 2-D total %g at iso-silicon", b3.Total, b2.Total)
	}
}

// TestFewerBiggerVsManySmaller encodes the SC1-vs-TESA cost shape: six
// medium chiplets (SC1's layout) cost more than two larger chiplets of
// comparable total compute, because of the extra bonding steps.
func TestFewerBiggerVsManySmaller(t *testing.T) {
	p := Default22nm()
	six, err := p.MCM(ChipletSpec{ArrayDieMM2: 5.2}, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	two, err := p.MCM(ChipletSpec{ArrayDieMM2: 7.7}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if two.Total >= six.Total {
		t.Errorf("two big chiplets ($%.2f) not cheaper than six medium ($%.2f)", two.Total, six.Total)
	}
	saving := 1 - two.Total/six.Total
	if saving < 0.20 {
		t.Errorf("cost saving = %.0f%%, want > 20%% (paper reports ~44%%)", saving*100)
	}
}

// TestCostMonotoneInChiplets: adding identical chiplets never reduces
// cost.
func TestCostMonotoneInChiplets(t *testing.T) {
	p := Default22nm()
	prev := 0.0
	for n := 1; n <= 6; n++ {
		b, err := p.MCM(ChipletSpec{ArrayDieMM2: 6}, n, 64)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total <= prev {
			t.Errorf("cost not increasing at n=%d: %g <= %g", n, b.Total, prev)
		}
		prev = b.Total
	}
}
