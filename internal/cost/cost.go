// Package cost implements TESA's MCM fabrication-cost model, after the
// representative model of Coskun et al. (TCAD 2020) the paper adopts: the
// cost of an MCM is the sum of its chiplet die costs (wafer amortization
// over yielded dies), the silicon interposer, and the microbump bonding
// steps, assuming known good dies (KGD — every die is tested before
// assembly, so assembly never consumes bad dies, but each bonding step
// still carries its own yield).
//
// The model captures the two levers TESA trades against DRAM power:
// smaller chiplets yield better and cost less silicon, but more chiplets
// mean more bonding steps; 3-D chiplets add a second die and a
// tier-stacking bond each.
package cost

import (
	"fmt"
	"math"
)

// Params holds the fabrication cost constants. The zero value is not
// valid; use Default22nm.
type Params struct {
	// WaferCost is the processed-wafer cost of the 22 nm logic process.
	WaferCost float64
	// WaferDiameterMM is the wafer diameter (300 mm).
	WaferDiameterMM float64
	// WaferEdgeExclusionMM is the unusable edge ring.
	WaferEdgeExclusionMM float64
	// DefectDensityPerCM2 is D0 of the negative-binomial yield model.
	DefectDensityPerCM2 float64
	// ClusterAlpha is the defect-clustering parameter (alpha).
	ClusterAlpha float64
	// DieTestCost is the per-die KGD test cost.
	DieTestCost float64

	// InterposerCostPerMM2 is the passive-interposer silicon cost per
	// mm^2 (mature node, near-perfect yield folded in).
	InterposerCostPerMM2 float64

	// BondCost is the cost of microbump-bonding one die to the
	// interposer.
	BondCost float64
	// BondYield is the per-bonding-step assembly yield.
	BondYield float64
	// StackBondCost is the cost of the intra-chiplet face-to-back bond of
	// a 3-D chiplet (die-on-die, finer pitch than die-on-interposer).
	StackBondCost float64
	// StackBondYield is that step's yield.
	StackBondYield float64
}

// Default22nm returns the calibration used in the reproduction (DESIGN.md
// section 5): $10,000 processed wafers at D0 = 0.8 /cm^2 with alpha = 2 —
// a die-cost-dominated regime, as in the Coskun et al. model the paper
// adopts, where the silicon (area x yield) term, not the bonding steps,
// drives the chiplet-count trade-off — plus cents-per-mm^2 interposer
// silicon and sub-dollar bonding.
func Default22nm() Params {
	return Params{
		WaferCost:            10000,
		WaferDiameterMM:      300,
		WaferEdgeExclusionMM: 3,
		DefectDensityPerCM2:  0.8,
		ClusterAlpha:         2,
		DieTestCost:          0.05,
		InterposerCostPerMM2: 0.02,
		BondCost:             0.12,
		BondYield:            0.99,
		StackBondCost:        0.20,
		StackBondYield:       0.98,
	}
}

// Validate reports an error for non-physical parameter sets.
func (p Params) Validate() error {
	switch {
	case p.WaferCost <= 0, p.WaferDiameterMM <= 0, p.DefectDensityPerCM2 < 0,
		p.ClusterAlpha <= 0, p.InterposerCostPerMM2 < 0:
		return fmt.Errorf("cost: non-physical wafer params %+v", p)
	case p.BondYield <= 0 || p.BondYield > 1, p.StackBondYield <= 0 || p.StackBondYield > 1:
		return fmt.Errorf("cost: bond yields must be in (0,1], got %g and %g", p.BondYield, p.StackBondYield)
	case p.BondCost < 0 || p.StackBondCost < 0 || p.DieTestCost < 0:
		return fmt.Errorf("cost: negative step costs %+v", p)
	}
	return nil
}

// DieYield returns the negative-binomial yield of a die of the given
// area: Y = (1 + A*D0/alpha)^(-alpha).
func (p Params) DieYield(areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		return 1
	}
	aCM2 := areaMM2 / 100
	return math.Pow(1+aCM2*p.DefectDensityPerCM2/p.ClusterAlpha, -p.ClusterAlpha)
}

// DiesPerWafer returns the gross die count for the given die area using
// the standard circular-wafer correction.
func (p Params) DiesPerWafer(areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		return 0
	}
	d := p.WaferDiameterMM - 2*p.WaferEdgeExclusionMM
	return math.Pi*d*d/(4*areaMM2) - math.Pi*d/math.Sqrt(2*areaMM2)
}

// DieCost returns the cost of one known-good die of the given area:
// wafer amortization over yielded dies, plus test.
func (p Params) DieCost(areaMM2 float64) float64 {
	n := p.DiesPerWafer(areaMM2)
	if n <= 0 {
		return math.Inf(1)
	}
	return p.WaferCost/(n*p.DieYield(areaMM2)) + p.DieTestCost
}

// ChipletSpec describes one chiplet for costing purposes.
type ChipletSpec struct {
	ThreeD bool
	// ArrayDieMM2 is the logic (systolic-array) die area. In 2-D this is
	// the whole chiplet die.
	ArrayDieMM2 float64
	// SRAMDieMM2 is the SRAM-tier die area including TSV overhead; zero
	// for 2-D (the SRAM is on the single die, included in ArrayDieMM2 by
	// the caller via the chiplet's total silicon).
	SRAMDieMM2 float64
}

// Breakdown itemizes an MCM's cost.
type Breakdown struct {
	ChipletDies float64 // all known-good dies
	Stacking    float64 // intra-chiplet 3-D bonds, yield-adjusted
	Interposer  float64
	Bonding     float64 // die-to-interposer bonds, yield-adjusted
	Total       float64
}

// MCM costs an MCM of n identical chiplets on an interposer of the given
// area. Known good dies: die cost is paid per assembled chiplet; assembly
// yield multiplies the whole in-progress assembly cost, because a failed
// bond scraps the interposer and everything already bonded.
func (p Params) MCM(spec ChipletSpec, n int, interposerMM2 float64) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if n <= 0 {
		return Breakdown{}, fmt.Errorf("cost: non-positive chiplet count %d", n)
	}
	if spec.ArrayDieMM2 <= 0 {
		return Breakdown{}, fmt.Errorf("cost: non-positive array die area %g", spec.ArrayDieMM2)
	}
	if spec.ThreeD && spec.SRAMDieMM2 <= 0 {
		return Breakdown{}, fmt.Errorf("cost: 3-D chiplet needs positive SRAM die area, got %g", spec.SRAMDieMM2)
	}

	var b Breakdown
	perChipletDies := p.DieCost(spec.ArrayDieMM2)
	if spec.ThreeD {
		perChipletDies += p.DieCost(spec.SRAMDieMM2)
		// The tier stack is assembled before interposer attach; a failed
		// stack bond scraps both dies.
		stacked := (perChipletDies + p.StackBondCost) / p.StackBondYield
		b.Stacking = stacked - perChipletDies
		perChipletDies = stacked
	}
	b.ChipletDies = float64(n)*perChipletDies - b.Stacking*float64(n)
	b.Stacking *= float64(n)

	b.Interposer = interposerMM2 * p.InterposerCostPerMM2

	// Sequential die-to-interposer attach: after bonding all n chiplets
	// the surviving fraction is BondYield^n; the expected cost of one
	// good MCM divides the materials by that survival probability and
	// adds the bond-step costs.
	materials := float64(n)*perChipletDies + b.Interposer + float64(n)*p.BondCost
	survival := math.Pow(p.BondYield, float64(n))
	b.Bonding = materials/survival - (float64(n)*perChipletDies + b.Interposer)
	b.Total = materials / survival
	return b, nil
}
