// AR/VR constraint-corner study: run TESA across frequency, frame-rate,
// and thermal-budget corners for 2-D chiplets — a compact version of the
// paper's Table V — and show how the thermal budget steers the chosen
// chiplet size and spacing.
//
// Run with:
//
//	go run ./examples/arvr
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tesa"
)

func main() {
	workload := tesa.ARVRWorkload()
	fmt.Printf("workload %q:\n", workload.Name)
	for _, n := range workload.Networks {
		fmt.Printf("  %-13s %6.1f GMACs, %5.1f MB weights, %d layers\n",
			n.Name, float64(n.MACs())/1e9, float64(n.WeightBytes())/1e6, len(n.Layers))
	}
	fmt.Println()

	space := tesa.Space{}
	for d := 184; d <= 256; d += 4 {
		space.ArrayDims = append(space.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 100 {
		space.ICSUMs = append(space.ICSUMs, ics)
	}

	type corner struct {
		freqMHz, fps, budgetC float64
	}
	corners := []corner{
		{400, 15, 75}, {400, 30, 75}, {400, 30, 85},
		{500, 30, 75}, {500, 30, 85},
	}
	fmt.Println("TESA outputs (2-D), by constraint corner:")
	for _, c := range corners {
		opts := tesa.DefaultOptions()
		opts.FreqHz = c.freqMHz * 1e6
		opts.Grid = 32
		cons := tesa.DefaultConstraints()
		cons.FPS = c.fps
		cons.TempBudgetC = c.budgetC

		ev, err := tesa.NewEvaluator(workload, opts, cons, tesa.Models{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
		if err != nil && !errors.Is(err, tesa.ErrNoFeasibleStart) {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%3.0f MHz %2.0f fps %2.0f C", c.freqMHz, c.fps, c.budgetC)
		if !res.Found {
			fmt.Printf("  %s: solution does not exist\n", label)
			continue
		}
		b := res.Best
		fmt.Printf("  %s: %v, %v grid -> peak %.1f C, $%.2f, DRAM %.1f W\n",
			label, b.Point, b.Mesh, b.PeakTempC, b.MCMCost.Total, b.DRAMPowerW)
	}
}
