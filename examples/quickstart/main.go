// Quickstart: evaluate one MCM design point and then let TESA find a
// better one on a small design space.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tesa"
)

func main() {
	// The paper's six-DNN AR/VR workload: handpose, segmentation,
	// detection, recognition, depth, and speech.
	workload := tesa.ARVRWorkload()

	// 2-D chiplets at 400 MHz under the paper's edge-device constraints:
	// 30 fps, 15 W, 75 C, on an 8x8 mm interposer.
	opts := tesa.DefaultOptions()
	opts.Grid = 32 // coarse thermal grid for a fast demo
	cons := tesa.DefaultConstraints()

	ev, err := tesa.NewEvaluator(workload, opts, cons, tesa.Models{})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate the paper's Table V configuration: a 200x200 systolic
	// array (the SRAM capacity, 3x1,024 KB, and the 2x1 mesh are derived
	// from the array dimension and the 1,700 um spacing).
	point := tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700}
	e, err := ev.EvaluateFull(point) // full: report thermals even if a constraint fails
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual point  %v\n", point)
	fmt.Printf("  mesh %v, peak %.1f C, power %.1f W, cost $%.2f, DRAM %.1f W\n",
		e.Mesh, e.PeakTempC, e.TotalPowerW, e.MCMCost.Total, e.DRAMPowerW)
	fmt.Printf("  latency %.1f ms (%.2fx of budget), feasible=%v %v\n\n",
		e.MakespanSec*1e3, e.LatencyFactor, e.Feasible, e.Violations)

	// Let the multi-start annealer search a reduced space (the full
	// Table II space works the same way, just slower).
	space := tesa.Space{}
	for d := 184; d <= 256; d += 8 {
		space.ArrayDims = append(space.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 200 {
		space.ICSUMs = append(space.ICSUMs, ics)
	}
	res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
	if err != nil && !errors.Is(err, tesa.ErrNoFeasibleStart) {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no feasible MCM in this space")
		return
	}
	b := res.Best
	fmt.Printf("TESA's pick   %v\n", b.Point)
	fmt.Printf("  mesh %v, peak %.1f C, power %.1f W, cost $%.2f, DRAM %.1f W\n",
		b.Mesh, b.PeakTempC, b.TotalPowerW, b.MCMCost.Total, b.DRAMPowerW)
	fmt.Printf("  objective %.3f after exploring %d points\n", b.Objective, res.Explored)
}
