// Transient thermal study: how fast does a TESA MCM heat up after the
// workload starts? The paper's DSE uses steady-state analysis (the AR/VR
// workload runs continuously); this example uses the transient extension
// of the HotSpot-equivalent solver to show the steady state is reached
// within seconds — justifying the steady-state methodology — and reports
// the package thermal time constant.
//
// Run with:
//
//	go run ./examples/transient
package main

import (
	"fmt"
	"log"

	"tesa"
	"tesa/internal/floorplan"
	"tesa/internal/thermal"
)

func main() {
	// Evaluate the paper's 2-D winner to get its converged power split.
	opts := tesa.DefaultOptions()
	opts.Grid = 44
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := ev.EvaluateFull(tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCM: %v, %v grid — steady-state peak %.2f C\n", e.Point, e.Mesh, e.PeakTempC)

	// Rebuild the hottest-phase stack's geometry and step it from
	// ambient. (EvaluateFull already retains the stack.)
	if e.HottestStack == nil {
		log.Fatal("no thermal stack retained; run EvaluateFull")
	}
	tr, err := e.HottestStack.SolveTransient(0.05, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient peak after %0.1f s: %.2f C (steady %.2f C)\n",
		tr.TimesSec[len(tr.TimesSec)-1], tr.PeakC[len(tr.PeakC)-1], e.PeakTempC)
	if t63, ok := tr.TimeToFractionSec(45, 0.63); ok {
		fmt.Printf("thermal time constant (63%% of rise): %.2f s\n", t63)
	}
	if t95, ok := tr.TimeToFractionSec(45, 0.95); ok {
		fmt.Printf("95%% of steady rise reached after:    %.2f s\n", t95)
	}

	fmt.Println("\nheating curve (peak C over time):")
	for i := 0; i < len(tr.TimesSec); i += 10 {
		bar := int((tr.PeakC[i] - 45) / (e.PeakTempC - 45) * 50)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  %5.2f s |%-50s| %.1f C\n", tr.TimesSec[i], stars(bar), tr.PeakC[i])
	}

	// A fresh standalone demonstration: a single hot chiplet on the
	// interposer, stepped at fine resolution.
	pl, err := floorplan.Place(11, 3.8, 1.7, 0, floorplan.Mesh{Rows: 1, Cols: 1})
	if err != nil {
		log.Fatal(err)
	}
	grid := 32
	maps, err := pl.Rasterize(grid, []floorplan.ChipletPower{{ArrayWatts: 3, SRAMWatts: 1}}, false, 0.44)
	if err != nil {
		log.Fatal(err)
	}
	stack, err := thermal.BuildStack2D(grid, 11e-3/float64(grid), pl.Coverage(grid), maps.Array, thermal.DefaultMaterials())
	if err != nil {
		log.Fatal(err)
	}
	tr2, err := stack.SolveTransient(0.01, 100)
	if err != nil {
		log.Fatal(err)
	}
	if t63, ok := tr2.TimeToFractionSec(45, 0.63); ok {
		fmt.Printf("\nsingle 4 W chiplet: time constant %.2f s, 1 s peak %.1f C\n", t63, tr2.PeakC[len(tr2.PeakC)-1])
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
