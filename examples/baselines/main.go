// Baseline comparison: why temperature awareness matters. Runs the
// paper's SC1 (maximum parallelism) and SC2 (sizing without temperature)
// baselines next to TESA at the same corner and reports what their picks
// actually do thermally — the substance of the paper's Tables III/IV and
// Fig. 5.
//
// Run with:
//
//	go run ./examples/baselines
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tesa"
)

func main() {
	workload := tesa.ARVRWorkload()
	opts := tesa.DefaultOptions()
	opts.FreqHz = 500e6
	opts.Grid = 32
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	cons.TempBudgetC = 75 // strict budget: this is where thermal awareness bites
	space := tesa.DefaultSpace()
	models := tesa.DefaultModels()

	fmt.Printf("corner: 2-D, 500 MHz, %.0f fps, %.0f C, %.0f W\n\n", cons.FPS, cons.TempBudgetC, cons.PowerBudgetW)
	// At 75 C and 500 MHz the thermal constraint binds: the
	// temperature-blind baselines pick hot MCMs, TESA must not.

	// SC1: one chiplet per DNN at maximum spacing, temperature unaware.
	sc1, err := tesa.RunSC1(workload, opts, cons, models, space)
	if err != nil {
		log.Fatal(err)
	}
	if sc1.Found {
		a := sc1.Actual
		fmt.Printf("SC1 (max parallelism):    %v, %v grid\n", a.Point, a.Mesh)
		fmt.Printf("  actually runs at %.1f C, %.1f W — temperature unawareness costs silicon and power\n",
			a.PeakTempC, a.TotalPowerW)
	}

	// SC2: the TESA optimizer with its thermal and leakage models cut out.
	sc2, err := tesa.RunSC2(workload, opts, cons, models, space, 1)
	if err != nil {
		log.Fatal(err)
	}
	if sc2.Found {
		a := sc2.Actual
		fmt.Printf("SC2 (sizing w/o thermal): %v, %v grid\n", a.Point, a.Mesh)
		state := fmt.Sprintf("peak %.1f C", a.PeakTempC)
		if a.Runaway {
			state = "THERMAL RUNAWAY"
		}
		fmt.Printf("  actually runs at %s\n", state)
	}

	// TESA itself.
	ev, err := tesa.NewEvaluator(workload, opts, cons, tesa.Models{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
	if err != nil && !errors.Is(err, tesa.ErrNoFeasibleStart) {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("TESA: no feasible MCM at this corner")
		return
	}
	b := res.Best
	fmt.Printf("TESA:                     %v, %v grid\n", b.Point, b.Mesh)
	fmt.Printf("  peak %.1f C, %.1f W — feasible by construction\n\n", b.PeakTempC, b.TotalPowerW)

	if sc1.Found {
		fmt.Printf("savings vs SC1: MCM cost %.0f%%, DRAM power %.0f%%\n",
			100*(1-b.MCMCost.Total/sc1.Actual.MCMCost.Total),
			100*(1-b.DRAMPowerW/sc1.Actual.DRAMPowerW))
	}
	if sc2.Found {
		fmt.Printf("vs SC2: MCM cost %+.0f%%, DRAM power %+.0f%%\n",
			100*(b.MCMCost.Total/sc2.Actual.MCMCost.Total-1),
			100*(b.DRAMPowerW/sc2.Actual.DRAMPowerW-1))
	}
}
