// 2-D vs 3-D study: evaluate the same chiplet configuration as planar
// chiplets and as two-tier SRAM-under-array stacks, then let TESA size
// each technology for the 85 C budget and compare OPS, cost, and DRAM
// power — the paper's Sec. IV-B.3, with thermal maps.
//
// Run with:
//
//	go run ./examples/thermal3d
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tesa"
)

func evaluator(tech tesa.Tech, budgetC float64) *tesa.Evaluator {
	opts := tesa.DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = 400e6
	opts.Grid = 44
	cons := tesa.DefaultConstraints()
	cons.TempBudgetC = budgetC
	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		log.Fatal(err)
	}
	return ev
}

func main() {
	// Iso-configuration comparison: the same design point in 2-D and 3-D.
	point := tesa.DesignPoint{ArrayDim: 216, ICSUM: 700}
	fmt.Printf("iso-configuration comparison at %v, 400 MHz:\n", point)
	for _, tech := range []tesa.Tech{tesa.Tech2D, tesa.Tech3D} {
		ev := evaluator(tech, 85)
		e, err := ev.EvaluateFull(point)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %v grid, footprint %.2f mm2/chiplet, peak %.1f C, cost $%.2f, peak %.1f TOPS\n",
			tech, e.Mesh, e.Chiplet.FootprintMM2, e.PeakTempC, e.MCMCost.Total, e.PeakOPS/1e12)
	}
	fmt.Println()

	// Technology sizing: TESA per technology at the relaxed 85 C budget.
	space := tesa.Space{}
	for d := 160; d <= 256; d += 4 {
		space.ArrayDims = append(space.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 100 {
		space.ICSUMs = append(space.ICSUMs, ics)
	}
	var results [2]*tesa.Evaluation
	for i, tech := range []tesa.Tech{tesa.Tech2D, tesa.Tech3D} {
		ev := evaluator(tech, 85)
		res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
		if err != nil && !errors.Is(err, tesa.ErrNoFeasibleStart) {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("%s: no feasible MCM\n", tech)
			return
		}
		// Re-evaluate fully for the thermal map.
		full, err := ev.EvaluateFull(res.Best.Point)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = full
		fmt.Printf("TESA %s @ 85 C: %v, %v grid, peak %.1f C, $%.2f, DRAM %.1f W, peak %.1f TOPS\n",
			tech, full.Point, full.Mesh, full.PeakTempC, full.MCMCost.Total, full.DRAMPowerW, full.PeakOPS/1e12)
	}
	r2, r3 := results[0], results[1]
	fmt.Printf("\n3-D vs 2-D: OPS %+.0f%%, cost %+.0f%%, DRAM power %+.0f%%\n\n",
		100*(r3.PeakOPS/r2.PeakOPS-1),
		100*(r3.MCMCost.Total/r2.MCMCost.Total-1),
		100*(r3.DRAMPowerW/r2.DRAMPowerW-1))

	fmt.Print(tesa.ThermalMapASCII(r2))
	fmt.Println()
	fmt.Print(tesa.ThermalMapASCII(r3))
}
