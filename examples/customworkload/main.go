// Custom workload: describe your own multi-DNN workload in JSON (TESA's
// layer-wise workload input), run TESA on it, and compare against the
// built-in AR/VR workload. This example builds a lighter two-DNN drone
// workload — detection plus depth — inline, but the same JSON can live in
// a file and be passed to `cmd/tesa -workload`.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tesa"
)

const droneWorkload = `{
  "name": "drone",
  "networks": [
    {
      "name": "detector",
      "layers": [
        {"kind": "conv", "in": [416, 416, 3],  "kernel": [3, 3], "filters": 16,  "stride": 1, "pad": 1},
        {"kind": "conv", "in": [208, 208, 16], "kernel": [3, 3], "filters": 32,  "stride": 1, "pad": 1},
        {"kind": "conv", "in": [104, 104, 32], "kernel": [3, 3], "filters": 64,  "stride": 1, "pad": 1},
        {"kind": "conv", "in": [52, 52, 64],   "kernel": [3, 3], "filters": 128, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [26, 26, 128],  "kernel": [3, 3], "filters": 256, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [13, 13, 256],  "kernel": [3, 3], "filters": 512, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [13, 13, 512],  "kernel": [3, 3], "filters": 1024, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [13, 13, 1024], "kernel": [1, 1], "filters": 125, "stride": 1, "pad": 0}
      ]
    },
    {
      "name": "depth",
      "layers": [
        {"kind": "conv", "in": [224, 224, 3],  "kernel": [7, 7], "filters": 64,  "stride": 2, "pad": 3},
        {"kind": "conv", "in": [112, 112, 64], "kernel": [3, 3], "filters": 128, "stride": 2, "pad": 1},
        {"kind": "conv", "in": [56, 56, 128],  "kernel": [3, 3], "filters": 256, "stride": 2, "pad": 1},
        {"kind": "conv", "in": [28, 28, 256],  "kernel": [3, 3], "filters": 256, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [56, 56, 256],  "kernel": [3, 3], "filters": 128, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [112, 112, 128], "kernel": [3, 3], "filters": 64, "stride": 1, "pad": 1},
        {"kind": "conv", "in": [224, 224, 64],  "kernel": [3, 3], "filters": 1,  "stride": 1, "pad": 1}
      ]
    }
  ]
}`

func main() {
	w, err := tesa.UnmarshalWorkload([]byte(droneWorkload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q:\n", w.Name)
	for _, n := range w.Networks {
		fmt.Printf("  %-10s %6.2f GMACs, %4.1f MB weights\n",
			n.Name, float64(n.MACs())/1e9, float64(n.WeightBytes())/1e6)
	}

	// A drone is even more constrained than a headset: 10 W, 70 C.
	opts := tesa.DefaultOptions()
	opts.Grid = 32
	opts.MaxChiplets = len(w.Networks)
	cons := tesa.DefaultConstraints()
	cons.PowerBudgetW = 10
	cons.TempBudgetC = 70

	ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ev.OptimizeContext(context.Background(), tesa.DefaultSpace(), 1, nil)
	if err != nil && !errors.Is(err, tesa.ErrNoFeasibleStart) {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("\nno feasible MCM for the drone constraints — relax a budget")
		return
	}
	b := res.Best
	fmt.Printf("\nTESA's drone MCM: %v, %v grid\n", b.Point, b.Mesh)
	fmt.Printf("  peak %.1f C (budget %.0f), %.1f W (budget %.0f), $%.2f, DRAM %.1f W\n",
		b.PeakTempC, cons.TempBudgetC, b.TotalPowerW, cons.PowerBudgetW, b.MCMCost.Total, b.DRAMPowerW)
	fmt.Printf("  latency %.1f ms against the %.0f fps budget\n", b.MakespanSec*1e3, cons.FPS)
}
