// Package tesa is a from-scratch Go reproduction of TESA, the
// TEmperature-aware methodology that Sizes and places Accelerator
// chiplets on multi-chip modules (MCMs) for multi-DNN workloads
// (Shukla et al., DATE 2023).
//
// TESA tunes a chiplet's systolic-array dimension and the inter-chiplet
// spacing (ICS) — from which the SRAM capacity and the chiplet mesh
// follow — to find an MCM that satisfies user-defined latency, power,
// area, and temperature constraints while minimizing a weighted sum of
// normalized MCM fabrication cost and DRAM power (the paper's Eq. 6).
//
// The package is a facade over the substrate implementations:
//
//   - internal/dnn       — the six-DNN AR/VR workload (layer-level IR)
//   - internal/systolic  — SCALE-Sim-equivalent performance model
//   - internal/sram      — CACTI-7.0-equivalent 22 nm SRAM model
//   - internal/power     — Eqs. (1)-(5) and the leakage models
//   - internal/dram      — Micron-style DDR4 power model
//   - internal/area      — 2-D / 3-D chiplet area model
//   - internal/cost      — MCM fabrication-cost model
//   - internal/floorplan — mesh estimator and floorplanner
//   - internal/thermal   — HotSpot-6.0-equivalent steady-state solver
//   - internal/sched     — thermally-aware multi-DNN static scheduler
//   - internal/anneal    — multi-start simulated annealing
//   - internal/core      — the TESA pipeline, optimizer, baselines, and
//     the drivers that regenerate every table and figure of the paper
//
// # Quick start
//
//	w := tesa.ARVRWorkload()
//	opts := tesa.DefaultOptions()           // 2-D, 400 MHz, Eq.6 weights 1/1
//	cons := tesa.DefaultConstraints()       // 30 fps, 15 W, 75 C, 8x8 mm
//	ev, _ := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
//	res, _ := ev.OptimizeContext(context.Background(), tesa.DefaultSpace(), 1, nil)
//	if res != nil && res.Found {
//	    fmt.Println(res.Best.Point, res.Best.PeakTempC)
//	}
//
// # Long-running searches
//
// Exhaustive sweeps of the Table II space can run for hours, so the
// search layer is built around context-first entrypoints:
// Evaluator.OptimizeContext and Evaluator.ExhaustiveContext observe
// cancellation and deadlines between evaluations, ExhaustiveContext
// shards the space and can checkpoint each completed shard to a JSONL
// stream (SweepOptions.Checkpoint) and resume a killed run
// (LoadCheckpoint + SweepOptions.ResumeFrom), and both stream
// incremental incumbents through a ProgressFunc. Failures use the
// exported sentinel errors (ErrInvalidSpace, ErrNoFeasibleStart,
// ErrCheckpointCorrupt) and support errors.Is. The legacy Optimize and
// Exhaustive methods remain as deprecated context.Background() wrappers
// with their historical semantics; new code should use the context
// entrypoints.
package tesa

import (
	"context"
	"io"
	"net/http"

	"tesa/internal/core"
	"tesa/internal/des"
	"tesa/internal/dnn"
	"tesa/internal/faults"
	"tesa/internal/jobspec"
	"tesa/internal/memo"
	"tesa/internal/server"
	"tesa/internal/systolic"
	"tesa/internal/telemetry"
)

// Core design-space exploration types.
type (
	// DesignPoint is one candidate MCM configuration (array dimension and
	// inter-chiplet spacing; SRAM capacity and mesh are derived).
	DesignPoint = core.DesignPoint
	// Space is the discrete design space (Table II).
	Space = core.Space
	// Evaluation is the full characterization of one MCM (Fig. 2b
	// pipeline outputs plus feasibility).
	Evaluation = core.Evaluation
	// Evaluator runs the TESA pipeline for one workload and setting.
	Evaluator = core.Evaluator
	// Options configure the evaluation (technology, frequency, dataflow,
	// thermal grid, Eq. 6 weights).
	Options = core.Options
	// Constraints are the user-defined limits (fps, power, temperature,
	// interposer area).
	Constraints = core.Constraints
	// Models bundles the substrate parameter sets.
	Models = core.Models
	// Tech selects 2-D or 3-D chiplet integration.
	Tech = core.Tech
	// OptimizeResult is a TESA optimization outcome.
	OptimizeResult = core.OptimizeResult
	// OptimizeOptions tunes Evaluator.OptimizeContext (progress
	// streaming); nil reproduces the legacy behavior.
	OptimizeOptions = core.OptimizeOptions
	// ExhaustiveResult is a full-space sweep outcome.
	ExhaustiveResult = core.ExhaustiveResult
	// SweepOptions tunes Evaluator.ExhaustiveContext: shard size,
	// checkpointing, resume, and progress streaming.
	SweepOptions = core.SweepOptions
	// CheckpointState is the resumable state recovered from a sweep
	// checkpoint (see LoadCheckpoint and SweepOptions.ResumeFrom).
	CheckpointState = core.CheckpointState
	// ShardCheckpoint is one completed shard's record inside a
	// CheckpointState.
	ShardCheckpoint = core.ShardCheckpoint
	// FrontMember is one full-fidelity point of an NSGA-II
	// multi-objective front (Evaluator.NSGA2FrontContext).
	FrontMember = core.FrontMember
	// FrontOptions tunes the NSGA-II front engine (population size,
	// generations, progress streaming).
	FrontOptions = core.FrontOptions
	// Progress is one incremental update from a long-running search.
	Progress = core.Progress
	// ProgressFunc receives Progress updates; see the core type for the
	// synchronization contract.
	ProgressFunc = core.ProgressFunc
	// EvalError is the structured failure of one design-point
	// evaluation: the failing stage, the point, and the cause. The
	// engines quarantine the point and continue; match the cause with
	// errors.Is against the evaluation-failure sentinels.
	EvalError = core.EvalError
	// QuarantinedPoint is one quarantine-ledger entry: a failed design
	// point with its stage and failure class.
	QuarantinedPoint = core.QuarantinedPoint
	// FaultPlan is a deterministic fault-injection plan for chaos runs;
	// see ParseFaults and Evaluator.InjectFaults.
	FaultPlan = faults.Plan
	// BaselineResult pairs a baseline's pick with its ground truth.
	BaselineResult = core.BaselineResult
	// ExperimentConfig parameterizes the paper's experiment drivers.
	ExperimentConfig = core.ExperimentConfig
	// Corner is one constraint corner of the evaluation.
	Corner = core.Corner
	// Workload is a multi-DNN workload.
	Workload = dnn.Workload
	// Network is one DNN described layer by layer.
	Network = dnn.Network
	// Dataflow selects the systolic-array mapping (os/ws).
	Dataflow = systolic.Dataflow
)

// Integration technologies.
const (
	Tech2D = core.Tech2D
	Tech3D = core.Tech3D
)

// Dataflows.
const (
	OutputStationary = systolic.OutputStationary
	WeightStationary = systolic.WeightStationary
)

// DefaultSurrogateBandC is the default guard band (Celsius) of the
// fast-path surrogate pre-screen; see Options.SurrogateBandC.
const DefaultSurrogateBandC = core.DefaultSurrogateBandC

// NewEvaluator builds an evaluator for the workload under the given
// options and constraints; zero-valued models are filled with the
// calibrated 22 nm defaults.
func NewEvaluator(w Workload, opts Options, cons Constraints, models Models) (*Evaluator, error) {
	return core.NewEvaluator(w, opts, cons, models)
}

// DefaultOptions returns the paper's evaluation defaults (2-D, 400 MHz,
// output-stationary, 125 um-class grid, alpha = beta = 1).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultConstraints returns the paper's canonical corner: 30 fps, 15 W,
// 75 C, 8x8 mm interposer.
func DefaultConstraints() Constraints { return core.DefaultConstraints() }

// DefaultModels returns the calibrated 22 nm substrate parameters.
func DefaultModels() Models { return core.DefaultModels() }

// DefaultSpace returns the Table II design space (121 array sizes x 21
// ICS options).
func DefaultSpace() Space { return core.DefaultSpace() }

// ValidationSpace returns the small Sec. IV-A optimizer-validation space.
func ValidationSpace() Space { return core.ValidationSpace() }

// ARVRWorkload returns the paper's six-DNN AR/VR workload: handpose
// detection, image segmentation (U-Net), object detection (MobileNet),
// object recognition (ResNet-50), depth estimation (DNL), and speech
// recognition (Transformer).
func ARVRWorkload() Workload { return dnn.ARVRWorkload() }

// SRAMKBForArray derives the per-SRAM capacity for an array dimension via
// the paper's area-ratio rule.
func SRAMKBForArray(arrayDim int) int { return core.SRAMKBForArray(arrayDim) }

// DefaultExperimentConfig returns the configuration that regenerates the
// paper's tables and figures.
func DefaultExperimentConfig() ExperimentConfig { return core.DefaultExperimentConfig() }

// Sentinel errors of the search layer, matched with errors.Is. The
// context-first entrypoints (Evaluator.OptimizeContext,
// Evaluator.ExhaustiveContext) return them; the legacy Optimize and
// Exhaustive wrappers preserve their historical results instead.
var (
	// ErrInvalidSpace marks an unsearchable design space or an
	// off-space design point.
	ErrInvalidSpace = core.ErrInvalidSpace
	// ErrNoFeasibleStart is OptimizeContext's "solution does not exist"
	// outcome: no feasible starting configuration was found.
	ErrNoFeasibleStart = core.ErrNoFeasibleStart
	// ErrCheckpointCorrupt marks an unreadable sweep checkpoint or one
	// that does not match the space being swept.
	ErrCheckpointCorrupt = core.ErrCheckpointCorrupt
)

// Evaluation-failure taxonomy: the causes an *EvalError can wrap. Match
// with errors.Is; the engines quarantine points failing with any of
// these and continue, unless SweepOptions/OptimizeOptions say otherwise.
var (
	// ErrStagePanic marks a recovered panic in a pipeline stage.
	ErrStagePanic = core.ErrStagePanic
	// ErrNonFinite marks a NaN/Inf stage output caught at the boundary.
	ErrNonFinite = core.ErrNonFinite
	// ErrSolverDiverged marks a thermal solve that failed at every rung
	// of the degraded-fidelity retry ladder.
	ErrSolverDiverged = core.ErrSolverDiverged
	// ErrStageTimeout marks a stage exceeding the per-stage wall-clock
	// budget (Evaluator.SetStageTimeout).
	ErrStageTimeout = core.ErrStageTimeout
	// ErrTooManyFailures aborts a run whose quarantine count exceeded
	// the MaxFailures policy.
	ErrTooManyFailures = core.ErrTooManyFailures
)

// ParseFaults compiles a fault-injection spec (the TESA_FAULTS / -faults
// syntax, e.g. "panic@thermal:dim=64-96,rate=0.1;nan@dram") into a plan
// for Evaluator.InjectFaults. An empty spec returns a nil plan, which
// disables injection.
func ParseFaults(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// LoadCheckpoint parses a sweep checkpoint stream written through
// SweepOptions.Checkpoint, for resuming via SweepOptions.ResumeFrom.
func LoadCheckpoint(r io.Reader) (*CheckpointState, error) { return core.LoadCheckpoint(r) }

// Baselines.
var (
	// RunSC1 is the temperature-unaware maximum-parallelism baseline.
	RunSC1 = core.RunSC1
	// RunSC2 is the temperature-unaware chiplet-sizing baseline.
	RunSC2 = core.RunSC2
	// RunW1 is the adoption of the minimize-temperature floorplanner [4].
	RunW1 = core.RunW1
	// RunW2 is the adoption of the T+cost+latency co-optimizer [3].
	RunW2 = core.RunW2
)

// ThermalMapASCII renders an evaluation's hottest-phase temperature
// field as an ASCII heat map (Fig. 6 analogue).
func ThermalMapASCII(ev *Evaluation) string { return core.ThermalMapASCII(ev) }

// ThermalMapCSV renders the same field as CSV for plotting.
func ThermalMapCSV(ev *Evaluation) string { return core.ThermalMapCSV(ev) }

// FloorplanASCII renders an evaluated MCM's floorplan as ASCII art.
func FloorplanASCII(ev *Evaluation) string { return core.FloorplanASCII(ev) }

// Dynamic multi-tenant workload simulation (internal/des): a seeded
// discrete-event scenario engine coupled to the transient thermal
// solver. Evaluate a point with Evaluator.EvaluateFull, then drive it
// with Evaluator.Simulate (one seeded run, optional JSONL event log) or
// Evaluator.SimulateDistribution (an N-draw scenario distribution
// scored for sim-aware ranking).
type (
	// Scenario is one dynamic workload: seeded tenant arrival processes,
	// a simulated horizon, the thermal coupling tick, and the DVFS
	// throttle policy.
	Scenario = des.Scenario
	// Tenant is one traffic source: a network, an arrival process, and a
	// tail-latency SLA.
	Tenant = des.Tenant
	// ArrivalSpec parameterizes a tenant's arrival process (poisson,
	// diurnal, or mmpp).
	ArrivalSpec = des.ArrivalSpec
	// Throttle is the temperature-triggered DVFS policy closing the
	// thermal loop.
	Throttle = des.Throttle
	// SimResult is one simulated run's outcome: traffic and SLA tallies,
	// throttle history, and the temperature envelope.
	SimResult = des.Result
	// TenantStats is one tenant's traffic and latency-percentile summary
	// inside a SimResult.
	TenantStats = des.TenantStats
	// SimScore aggregates a design's behavior over an N-draw scenario
	// distribution; see SimScore.CombinedObjective.
	SimScore = core.SimScore
)

// Arrival-process kinds of an ArrivalSpec.
const (
	ArrivalPoisson = des.ArrivalPoisson
	ArrivalDiurnal = des.ArrivalDiurnal
	ArrivalMMPP    = des.ArrivalMMPP
)

// Observability (internal/telemetry). Attach a hub to an evaluator with
// Evaluator.Instrument; a nil *Telemetry disables everything at ~zero
// cost, so library users can plumb one unconditionally:
//
//	tel := tesa.NewTelemetry(tesa.NewJSONLSink(traceFile)) // or NewTelemetry(nil)
//	ev.Instrument(tel)
//	res, _ := ev.OptimizeContext(ctx, tesa.DefaultSpace(), 1, nil)
//	fmt.Print(tel.Summary())
type (
	// Telemetry is the observability hub: metrics registry, optional
	// trace sink, Span/Hook API. The nil hub is the disabled state.
	Telemetry = telemetry.Telemetry
	// EventSink receives structured trace events.
	EventSink = telemetry.EventSink
	// JSONLSink writes one JSON object per trace event.
	JSONLSink = telemetry.JSONLSink
	// FileSink is a crash-safe JSONL sink over a file path (temp-file +
	// rename creation, fsync per flush) — what the CLIs use for sweep
	// checkpoints.
	FileSink = telemetry.FileSink
	// MetricsServer is the live exposition HTTP server: /metrics
	// (Prometheus text), /debug/vars (JSON snapshot), /progress, and
	// /debug/pprof. The nil server is the disabled state.
	MetricsServer = telemetry.Server
	// Manifest is a run's identity card: run id, command, argv, and
	// arbitrary run-defining facts, emitted as "run.manifest" JSONL
	// records at start and end of a run.
	Manifest = telemetry.Manifest
)

// NewTelemetry returns an enabled hub; sink may be nil for
// metrics-only collection.
func NewTelemetry(sink EventSink) *Telemetry { return telemetry.New(sink) }

// ServeMetrics starts a MetricsServer for tel's registry on addr
// (e.g. "localhost:9090"); close it with Server.Close.
func ServeMetrics(addr string, tel *Telemetry) (*MetricsServer, error) {
	return telemetry.Serve(addr, tel)
}

// NewManifest starts a run manifest for the named command; see
// telemetry.Manifest for the record schema.
func NewManifest(command string, argv []string) *Manifest {
	return telemetry.NewManifest(command, argv)
}

// ModelVersion names the revision of the analytical models baked into
// this build; memo cache segments and run manifests carry it so stale
// artifacts are detected across binary upgrades.
const ModelVersion = core.ModelVersion

// Memoization (internal/memo). A MemoStore caches pipeline
// sub-evaluations (systolic profiles, SRAM estimates, schedules,
// coverage maps, whole DSE evaluations) under content-addressed keys.
// Options.Memo gives each evaluator a private store; attach one
// explicitly with Evaluator.UseMemo to share it across evaluators —
// e.g. an exhaustive sweep and the annealer validating against it —
// and warm it from disk with LoadMemoDir:
//
//	store := tesa.NewMemoStore()
//	closeDisk, _ := tesa.LoadMemoDir(store, ".tesa-memo")
//	defer closeDisk()
//	ev.UseMemo(store)
type (
	// MemoStore is a concurrency-safe content-addressed cache of
	// pipeline sub-evaluations, shared across evaluators and annealing
	// chains.
	MemoStore = memo.Store
	// MemoStats is a point-in-time snapshot of a store's hit/miss/load
	// counters, overall and per result kind.
	MemoStats = memo.Stats
)

// NewMemoStore returns an empty in-memory memo store.
func NewMemoStore() *MemoStore { return memo.NewStore() }

// LoadMemoDir warm-starts store from the JSONL cache segments under
// dir (creating it when absent) and arranges for new results to be
// persisted there. Segments written by a different model version are
// skipped. The returned closer flushes pending records; call it before
// exiting.
func LoadMemoDir(store *MemoStore, dir string) (func() error, error) {
	return core.LoadMemoDir(store, dir)
}

// NewJSONLSink wraps w in a buffered JSONL trace sink; call Flush (or
// Telemetry.Flush) before exiting.
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONLSink(w) }

// NewFileSink opens path as a crash-safe JSONL sink (see FileSink);
// call Close before exiting.
func NewFileSink(path string) (*FileSink, error) { return telemetry.NewFileSink(path) }

// MarshalWorkload serializes a workload to the JSON schema documented in
// internal/dnn (TESA's layer-wise workload description input).
func MarshalWorkload(w *Workload) ([]byte, error) { return dnn.MarshalWorkload(w) }

// UnmarshalWorkload parses and validates a workload from JSON.
func UnmarshalWorkload(data []byte) (Workload, error) { return dnn.UnmarshalWorkload(data) }

// Jobs (internal/jobspec, internal/server). A JobSpec is the versioned
// JSON description of one DSE request — optimize, sweep, or pareto —
// consumed identically by the CLIs' -job flag, by RunJob in-process, and
// by a tesa-server over HTTP. The spec is the single source of truth for
// a run's configuration, so the three paths produce byte-identical
// JobResults:
//
//	spec, _ := tesa.LoadJobSpec("job.json")
//	res, _ := tesa.RunJob(ctx, spec, ".", nil)        // in-process
//	cli := tesa.NewJobClient("http://localhost:8080", nil)
//	res, _ = cli.Run(ctx, raw, nil)                   // same bytes, via a server
type (
	// JobSpec is the versioned ("tesa.jobspec/v1") JSON job request.
	JobSpec = jobspec.Spec
	// JobResult is the canonical, NaN-safe result document of a job.
	JobResult = jobspec.Result
	// JobClient is an HTTP client for a tesa-server job API: submit,
	// poll, stream progress over SSE, cancel.
	JobClient = server.Client
)

// ParseJobSpec strictly decodes and validates a JobSpec from JSON:
// unknown fields, a wrong version, or an invalid kind are errors.
func ParseJobSpec(data []byte) (*JobSpec, error) { return jobspec.Parse(data) }

// LoadJobSpec reads and parses a JobSpec file.
func LoadJobSpec(path string) (*JobSpec, error) { return jobspec.Load(path) }

// RunJob resolves spec (workload_file paths are relative to baseDir)
// and executes it, observing ctx for cancellation and the spec's own
// deadline_sec. A non-nil store memoizes pipeline stages across calls —
// pass one process-wide store to get tesa-server's warm-state behaviour
// in-process; nil runs cold. Results are bit-identical either way.
func RunJob(ctx context.Context, spec *JobSpec, baseDir string, store *MemoStore) (*JobResult, error) {
	r, err := spec.Resolve(baseDir)
	if err != nil {
		return nil, err
	}
	return jobspec.Run(ctx, r, jobspec.Runtime{Store: store})
}

// NewJobClient returns a JobClient for a tesa-server base URL (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
func NewJobClient(base string, httpClient *http.Client) *JobClient {
	return server.NewClient(base, httpClient)
}
